(* The anomaly gate behind `ptsim report`.

   Two JSON artifacts go in — telemetry metrics dumps, simulation
   outcomes, or whole benchmark files — and a finding list comes out:
   threshold breaches (p99 regressions, lock-contention spikes,
   eviction storms, tracer drops) plus informational deltas on every
   other shared key.  Keys present on only one side are counted and
   ignored, so `ptsim fleet --quick --json` (no timing fields) gates
   cleanly against the committed benchmark baseline (timing fields
   included).  Stdlib only, like tools/bench_diff. *)

(* --- a minimal JSON reader (objects keep field order) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              Buffer.add_char b (Char.chr (code land 0xFF));
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape \\%C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let load_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match parse s with
      | v -> Ok v
      | exception Parse_error e -> Error (Printf.sprintf "%s: %s" path e))

(* --- histogram quantiles from serialized buckets --- *)

(* The same clamped within-bucket interpolation as Obs.Hist.quantile,
   replayed over the (lo, hi, count) bucket triples a metrics JSON dump
   carries, so a p99 computed here equals the live histogram's.  The
   (0, 0) bucket is the log2 histogram's "v <= 0" bin; like the live
   version its lower bound extends down to the observed minimum. *)
let bucket_quantile ~count ~vmin ~vmax buckets ~q =
  if count = 0 then 0
  else begin
    let target =
      max 1 (min count (int_of_float (Float.ceil (q *. float_of_int count))))
    in
    let rec walk seen = function
      | [] -> vmax
      | (lo, hi, here) :: rest ->
          if here > 0 && seen + here >= target then begin
            let lo = if lo = 0 && hi = 0 then min 0 vmin else max lo vmin in
            let hi = min hi vmax in
            let pos = target - seen in
            if here = 1 then hi else hi - ((hi - lo) * (here - pos) / (here - 1))
          end
          else walk (seen + here) rest
    in
    walk 0 buckets
  end

(* --- flattening --- *)

let obj_find key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num_of = function Num f -> Some f | _ -> None

let int_of v = match num_of v with Some f -> Some (int_of_float f) | None -> None

(* Keys that identify or annotate a document rather than measure it. *)
let skipped_key = function
  | "schema_version" | "command" | "experiment" | "series" -> true
  | _ -> false

let join prefix key = if prefix = "" then key else prefix ^ "." ^ key

(* {"name": n, "count": _, "min": _, "max": _, "buckets": [...]} — a
   telemetry histogram row; flattens to n.count/.p50/.p90/.p99. *)
let hist_row fields =
  match
    ( List.assoc_opt "name" fields,
      List.assoc_opt "count" fields,
      List.assoc_opt "min" fields,
      List.assoc_opt "max" fields,
      List.assoc_opt "buckets" fields )
  with
  | Some (Str name), Some (Num _ as c), Some (Num _ as mn), Some (Num _ as mx),
    Some (List bs) ->
      let buckets =
        List.filter_map
          (fun b ->
            match
              (obj_find "lo" b, obj_find "hi" b, obj_find "count" b)
            with
            | Some lo, Some hi, Some c -> (
                match (int_of lo, int_of hi, int_of c) with
                | Some lo, Some hi, Some c -> Some (lo, hi, c)
                | _ -> None)
            | _ -> None)
          bs
      in
      let count = Option.get (int_of c) in
      let vmin = Option.get (int_of mn) and vmax = Option.get (int_of mx) in
      let quant q =
        float_of_int (bucket_quantile ~count ~vmin ~vmax buckets ~q)
      in
      Some
        ( name,
          [
            ("count", float_of_int count);
            ("p50", quant 0.50);
            ("p90", quant 0.90);
            ("p99", quant 0.99);
          ] )
  | _ -> None

(* {"name": n, "value": v} — a telemetry counter row. *)
let counter_row fields =
  match (List.assoc_opt "name" fields, List.assoc_opt "value" fields) with
  | Some (Str name), Some (Num v) when List.length fields = 2 -> Some (name, v)
  | _ -> None

(* A row's identity within its list: its string-valued fields joined
   with '/', or its position when it has none. *)
let row_discriminator i fields =
  match
    List.filter_map (function k, Str s when not (skipped_key k) -> Some (k, s) | _ -> None) fields
  with
  | [] -> string_of_int i
  | tagged -> String.concat "/" (List.map snd tagged)

let flatten root =
  let acc = ref [] in
  let emit key v = acc := (key, v) :: !acc in
  let rec obj prefix fields =
    List.iter
      (fun (key, v) ->
        if not (skipped_key key) then
          match v with
          | Num f -> emit (join prefix key) f
          | Bool b -> emit (join prefix key) (if b then 1.0 else 0.0)
          | Str _ | Null -> ()
          | Obj inner ->
              (* "experiments" is a container, not a measurement — its
                 children flatten at top level so a bare outcome file
                 (prefixed by its "experiment" tag) lines up *)
              let prefix =
                if prefix = "" && key = "experiments" then "" else join prefix key
              in
              obj prefix inner
          | List rows -> row_list (join prefix key) rows)
      fields
  and row_list prefix rows =
    (* rows sharing every string field (e.g. throughput sweeps keyed
       by table/locking but differing in a numeric domain count) get
       an occurrence ordinal so distinct rows never collide; row order
       is stable on both sides, so the keys still line up *)
    let discs =
      List.mapi
        (fun i row ->
          match row with
          | Obj fields -> row_discriminator i fields
          | _ -> string_of_int i)
        rows
    in
    let total = Hashtbl.create 8 and seen = Hashtbl.create 8 in
    List.iter
      (fun d ->
        Hashtbl.replace total d
          (1 + Option.value ~default:0 (Hashtbl.find_opt total d)))
      discs;
    let unique d =
      if Hashtbl.find total d = 1 then d
      else begin
        let n = Option.value ~default:0 (Hashtbl.find_opt seen d) in
        Hashtbl.replace seen d (n + 1);
        Printf.sprintf "%s#%d" d n
      end
    in
    List.iter2
      (fun disc row ->
        match row with
        | Obj fields -> (
            match counter_row fields with
            | Some (name, v) -> emit name v
            | None -> (
                match hist_row fields with
                | Some (name, stats) ->
                    List.iter (fun (k, v) -> emit (join name k) v) stats
                | None ->
                    obj (Printf.sprintf "%s[%s]" prefix (unique disc)) fields))
        | _ -> ())
      discs rows
  in
  (match root with
  | Obj fields ->
      let prefix =
        match List.assoc_opt "experiment" fields with
        | Some (Str tag) -> tag
        | _ -> ""
      in
      obj prefix fields
  | _ -> ());
  List.rev !acc

(* --- the anomaly rules --- *)

type severity = Info | Breach

type finding = {
  severity : severity;
  key : string;
  baseline : float option;
  current : float option;
  note : string;
}

type report = {
  findings : finding list;
  compared : int;
  baseline_only : int;
  current_only : int;
}

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  ls > 0 && go 0

let p99_key k = ends_with ~suffix:".p99" k || ends_with ~suffix:"p99_ns" k

let contention_key k =
  contains ~sub:"write_locks" k
  || contains ~sub:"read_contention" k
  || contains ~sub:"seqlock_fallbacks" k

let eviction_key k =
  contains ~sub:"evictions" k || contains ~sub:"evicted_pages" k

let dropped_key k = ends_with ~suffix:"obs.trace.dropped" k

(* recovery.replayed_records and its chaos-row mirror: a jump means
   shards are crash-looping or checkpoints stopped compacting *)
let recovery_key k = contains ~sub:"replayed_records" k

(* degraded_rejections is tenant-visible unavailability: a run that
   starts rejecting when its baseline never did breaches outright
   (there is no ratio over zero), and an established count may at most
   double — crash soaks that expect a fixed rejection count are also
   gated by bench_diff's exact row equality *)
let rejection_key k = contains ~sub:"degraded_rejections" k

(* Each rule needs both a ratio and an absolute floor: tiny counts
   ratio up violently (1 -> 3 evictions is not a storm), so a current
   value under the floor never breaches. *)
let ratio_rule ~name ~ratio ~floor ~base ~cur =
  if cur > ratio *. base && cur >= floor then
    Some
      (Printf.sprintf "%s: %.2fx over baseline (limit %.2fx, floor %g)" name
         (if base > 0.0 then cur /. base else infinity)
         ratio floor)
  else None

let judge ~key ~base ~cur =
  if p99_key key then
    ratio_rule ~name:"p99 regression" ~ratio:1.5 ~floor:64.0 ~base ~cur
  else if contention_key key then
    ratio_rule ~name:"lock-contention spike" ~ratio:1.5 ~floor:128.0 ~base ~cur
  else if eviction_key key then
    ratio_rule ~name:"eviction storm" ~ratio:2.0 ~floor:16.0 ~base ~cur
  else if recovery_key key then
    ratio_rule ~name:"recovery storm" ~ratio:2.0 ~floor:64.0 ~base ~cur
  else if rejection_key key then
    ratio_rule ~name:"degraded-rejection surge" ~ratio:2.0 ~floor:1.0 ~base
      ~cur
  else None

let compare_files ~baseline ~current =
  let fb = flatten baseline and fc = flatten current in
  let base_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) fb;
  let cur_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) fc;
  let breaches = ref [] and infos = ref [] in
  let compared = ref 0 and current_only = ref 0 in
  List.iter
    (fun (key, cur) ->
      match Hashtbl.find_opt base_tbl key with
      | None ->
          incr current_only;
          (* tracer drops and degraded rejections breach even with no
             baseline counterpart: a saturated ring means the trace
             artifact is incomplete, and a rejection means a tenant
             saw unavailability *)
          if dropped_key key && cur > 0.0 then
            breaches :=
              {
                severity = Breach;
                key;
                baseline = None;
                current = Some cur;
                note =
                  Printf.sprintf "tracer dropped %g event(s); must be 0" cur;
              }
              :: !breaches
          else if rejection_key key && cur > 0.0 then
            breaches :=
              {
                severity = Breach;
                key;
                baseline = None;
                current = Some cur;
                note =
                  Printf.sprintf
                    "%g degraded rejection(s) with no baseline counterpart: \
                     tenants saw unavailability a baseline run never did"
                    cur;
              }
              :: !breaches
      | Some base ->
          incr compared;
          if dropped_key key && cur > 0.0 then
            breaches :=
              {
                severity = Breach;
                key;
                baseline = Some base;
                current = Some cur;
                note =
                  Printf.sprintf "tracer dropped %g event(s); must be 0" cur;
              }
              :: !breaches
          else
            let finding =
              match judge ~key ~base ~cur with
              | Some note ->
                  Some
                    {
                      severity = Breach;
                      key;
                      baseline = Some base;
                      current = Some cur;
                      note;
                    }
              | None ->
                  if cur <> base then
                    Some
                      {
                        severity = Info;
                        key;
                        baseline = Some base;
                        current = Some cur;
                        note = Printf.sprintf "%+g" (cur -. base);
                      }
                  else None
            in
            match finding with
            | Some ({ severity = Breach; _ } as f) -> breaches := f :: !breaches
            | Some f -> infos := f :: !infos
            | None -> ())
    fc;
  let baseline_only =
    List.length (List.filter (fun (k, _) -> not (Hashtbl.mem cur_tbl k)) fb)
  in
  {
    findings = List.rev !breaches @ List.rev !infos;
    compared = !compared;
    baseline_only;
    current_only = !current_only;
  }

let has_breach r = List.exists (fun f -> f.severity = Breach) r.findings

(* --- rendering --- *)

let pp_num = function
  | None -> "-"
  | Some f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f

let render_table ~baseline_path ~current_path r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "obs report: %s vs %s\n" baseline_path current_path);
  Buffer.add_string b
    (Printf.sprintf
       "  %d shared key(s) compared; ignored %d baseline-only, %d \
        current-only\n"
       r.compared r.baseline_only r.current_only);
  let key_w =
    List.fold_left (fun w f -> max w (String.length f.key)) 8 r.findings
  in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "  %-6s %-*s %12s %12s  %s\n"
           (match f.severity with Breach -> "BREACH" | Info -> "info")
           key_w f.key (pp_num f.baseline) (pp_num f.current) f.note))
    r.findings;
  let nb = List.length (List.filter (fun f -> f.severity = Breach) r.findings) in
  Buffer.add_string b
    (Printf.sprintf "  %d breach(es), %d info finding(s)\n" nb
       (List.length r.findings - nb));
  Buffer.contents b

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_opt_num buf = function
  | None -> Buffer.add_string buf "null"
  | Some f ->
      Buffer.add_string buf
        (if Float.is_integer f && Float.abs f < 1e15 then
           Printf.sprintf "%.0f" f
         else Printf.sprintf "%g" f)

let render_json ~baseline_path ~current_path r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema_version\":1,\"kind\":\"obs_report\"";
  Buffer.add_string b ",\"baseline\":\"";
  add_escaped b baseline_path;
  Buffer.add_string b "\",\"current\":\"";
  add_escaped b current_path;
  Buffer.add_string b
    (Printf.sprintf "\",\"compared\":%d,\"baseline_only\":%d,\"current_only\":%d"
       r.compared r.baseline_only r.current_only);
  let nb = List.length (List.filter (fun f -> f.severity = Breach) r.findings) in
  Buffer.add_string b (Printf.sprintf ",\"breaches\":%d,\"findings\":[" nb);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"severity\":\"";
      Buffer.add_string b
        (match f.severity with Breach -> "breach" | Info -> "info");
      Buffer.add_string b "\",\"key\":\"";
      add_escaped b f.key;
      Buffer.add_string b "\",\"baseline\":";
      add_opt_num b f.baseline;
      Buffer.add_string b ",\"current\":";
      add_opt_num b f.current;
      Buffer.add_string b ",\"note\":\"";
      add_escaped b f.note;
      Buffer.add_string b "\"}")
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b
