(** The anomaly gate behind [ptsim report].

    Reads two JSON artifacts — telemetry metrics dumps
    ([--metrics-out]), simulation outcomes ([ptsim fleet --json], ...)
    or whole benchmark files (BENCH_PR10.json) — normalizes both to a
    flat [dotted.key -> number] view, and compares the shared keys
    against declarative anomaly thresholds:

    - p99 keys ([.p99] / [p99_ns]): breach when current exceeds 1.5x
      baseline and the floor of 64;
    - lock-contention keys ([write_locks], [read_contention],
      [seqlock_fallbacks]): 1.5x over a floor of 128;
    - eviction keys ([evictions], [evicted_pages]): 2x over a floor
      of 16;
    - recovery keys ([replayed_records]): 2x over a floor of 64 — a
      recovery storm means shards are crash-looping or checkpoints
      stopped compacting;
    - [obs.trace.dropped] > 0 in the current file breaches
      unconditionally — the tracer ring must never saturate in CI;
    - [degraded_rejections] > 0 breaches even with no baseline
      counterpart (tenant-visible unavailability a baseline run never
      showed has no ratio to judge); with one, an established count
      may at most double (crash soaks that expect a fixed rejection
      count are also gated by bench_diff's exact row equality).

    Every other shared key that changed becomes an [Info] finding;
    keys present on only one side are counted, not reported, so a
    metrics dump can be gated against a richer benchmark file.
    No dependencies beyond the stdlib. *)

(** A minimal JSON tree; objects keep field order. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
(** Parse one JSON document. @raise Parse_error on malformed input. *)

val load_file : string -> (json, string) result
(** Read and parse a file; [Error] carries a printable message. *)

val bucket_quantile :
  count:int ->
  vmin:int ->
  vmax:int ->
  (int * int * int) list ->
  q:float ->
  int
(** The q-quantile of a serialized log2 histogram, from its
    [(lo, hi, count)] buckets in ascending order plus the observed
    [vmin]/[vmax] — the same clamped within-bucket interpolation as
    [Obs.Hist.quantile], so a quantile computed from a metrics JSON
    dump equals the one the live histogram would report. *)

val flatten : json -> (string * float) list
(** Normalize a document to flat [key -> number] pairs, in document
    order:

    - a top-level ["experiments"] object is inlined, so
      [experiments.fleet.*] in a benchmark file and a bare
      [ptsim fleet --json] outcome (prefixed by its ["experiment"]
      tag) flatten to the same keys;
    - [{"name": n, "value": v}] rows (telemetry counters) flatten to
      [n = v]; histogram rows flatten to [n.count] and interpolated
      [n.p50]/[n.p90]/[n.p99];
    - other object lists key each row by its string-valued fields
      joined with ['/'], e.g. [fleet.rows[batched/clustered/...]];
    - booleans become 0/1; strings are row discriminators, not
      values; [schema_version], [command], [experiment] and [series]
      are skipped. *)

type severity = Info | Breach

type finding = {
  severity : severity;
  key : string;
  baseline : float option;  (** [None] for current-only breaches *)
  current : float option;
  note : string;  (** which rule fired, or the delta *)
}

type report = {
  findings : finding list;  (** breaches first, then info, stable *)
  compared : int;  (** shared keys examined *)
  baseline_only : int;  (** keys ignored: absent from current *)
  current_only : int;  (** keys ignored: absent from baseline *)
}

val compare_files : baseline:json -> current:json -> report

val has_breach : report -> bool

val render_table :
  baseline_path:string -> current_path:string -> report -> string
(** The human rendering: one aligned row per finding, breaches
    first, with a header and a summary line. *)

val render_json :
  baseline_path:string -> current_path:string -> report -> string
(** One JSON object ({["kind":"obs_report"]}) with the finding list
    and the ignored-key counts. *)
