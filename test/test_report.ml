(* The anomaly gate (tools/obs_report) and the end-to-end observability
   invariants it rides on: flattening of metrics dumps, outcomes and
   benchmark files to one key space; quantiles recomputed from
   serialized buckets matching the live histogram; the threshold rules
   (p99 regression, contention spike, eviction storm, tracer drops);
   and the domain-count byte-identity of the flight-recorder dump and
   the per-phase series. *)

module R = Obs_report
module H = Obs.Hist

let parse s = R.parse s

(* --- flattening --- *)

let test_flatten_shapes () =
  (* a telemetry dump: counters by name, histograms to quantiles *)
  let metrics =
    parse
      {|{"schema_version":2,"command":"fleet",
         "counters":[{"name":"fleet.mmaps","value":42}],
         "histograms":[{"name":"svc.cost","count":3,"sum":15,"min":3,"max":9,
                        "buckets":[{"lo":2,"hi":3,"count":2},
                                   {"lo":8,"hi":15,"count":1}]}],
         "series":[{"label":"x","points":[]}]}|}
  in
  let flat = R.flatten metrics in
  Alcotest.(check (option (float 1e-9)))
    "counter row flattens to its name" (Some 42.0)
    (List.assoc_opt "fleet.mmaps" flat);
  Alcotest.(check (option (float 1e-9)))
    "histogram row contributes count" (Some 3.0)
    (List.assoc_opt "svc.cost.count" flat);
  Alcotest.(check bool)
    "histogram row contributes p99" true
    (List.mem_assoc "svc.cost.p99" flat);
  Alcotest.(check bool)
    "series is skipped" true
    (List.for_all (fun (k, _) -> not (String.starts_with ~prefix:"series" k)) flat);
  (* an outcome file: prefixed by its experiment tag; a benchmark
     file: experiments inlined — both land on the same keys *)
  let outcome =
    parse
      {|{"schema_version":1,"experiment":"fleet","seed":7,
         "rows":[{"mode":"batched","org":"clustered","evictions":5}]}|}
  in
  let bench =
    parse
      {|{"schema_version":3,
         "experiments":{"fleet":{"experiment":"fleet","seed":7,
           "rows":[{"mode":"batched","org":"clustered","evictions":5}]}}}|}
  in
  let key = "fleet.rows[batched/clustered].evictions" in
  Alcotest.(check (option (float 1e-9)))
    "outcome flattens under its tag" (Some 5.0)
    (List.assoc_opt key (R.flatten outcome));
  Alcotest.(check (option (float 1e-9)))
    "benchmark section flattens to the same key" (Some 5.0)
    (List.assoc_opt key (R.flatten bench));
  (* rows differing only in numeric fields stay distinct *)
  let sweep =
    parse
      {|{"experiment":"tp","rows":[
          {"table":"clustered","locking":"striped","domains":1,"walks":10},
          {"table":"clustered","locking":"striped","domains":4,"walks":40}]}|}
  in
  let flat = R.flatten sweep in
  Alcotest.(check (option (float 1e-9)))
    "first colliding row ordinal 0" (Some 10.0)
    (List.assoc_opt "tp.rows[clustered/striped#0].walks" flat);
  Alcotest.(check (option (float 1e-9)))
    "second colliding row ordinal 1" (Some 40.0)
    (List.assoc_opt "tp.rows[clustered/striped#1].walks" flat)

(* quantiles recomputed from a dump's buckets equal the live
   histogram's — the property that lets the gate read p99 off disk *)
let prop_bucket_quantile_matches_hist =
  QCheck.Test.make ~name:"bucket_quantile matches Hist.quantile" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) small_nat)
        (map (fun n -> float_of_int n /. 100.0) (int_range 1 100)))
    (fun (values, q) ->
      let h = H.create () in
      List.iter (H.observe h) values;
      let buckets = ref [] in
      H.iter_nonzero h (fun k c ->
          buckets := (H.bucket_lo k, H.bucket_hi k, c) :: !buckets);
      R.bucket_quantile ~count:(H.count h) ~vmin:(H.min_value h)
        ~vmax:(H.max_value h) (List.rev !buckets) ~q
      = H.quantile h ~q)

(* --- the threshold rules --- *)

let doc fields =
  parse
    (Printf.sprintf {|{"experiment":"t","rows":[{"org":"a",%s}]}|} fields)

let compare_rows base cur =
  R.compare_files ~baseline:(doc base) ~current:(doc cur)

let breaches r =
  List.filter (fun f -> f.R.severity = R.Breach) r.R.findings

let test_rules () =
  let self = compare_rows {|"p99_ns":1000|} {|"p99_ns":1000|} in
  Alcotest.(check int) "self-compare is clean" 0
    (List.length self.R.findings);
  Alcotest.(check bool) "no breach" false (R.has_breach self);
  (* p99 regression: ratio 1.5, floor 64 *)
  Alcotest.(check int) "p99 4x breaches" 1
    (List.length (breaches (compare_rows {|"p99_ns":1000|} {|"p99_ns":4000|})));
  Alcotest.(check int) "p99 under floor never breaches" 0
    (List.length (breaches (compare_rows {|"p99_ns":10|} {|"p99_ns":60|})));
  Alcotest.(check int) "p99 1.2x stays info" 0
    (List.length (breaches (compare_rows {|"p99_ns":1000|} {|"p99_ns":1200|})));
  (* contention: ratio 1.5, floor 128 *)
  Alcotest.(check int) "write_locks 3x breaches" 1
    (List.length
       (breaches (compare_rows {|"write_locks":200|} {|"write_locks":600|})));
  Alcotest.(check int) "write_locks under floor passes" 0
    (List.length
       (breaches (compare_rows {|"write_locks":10|} {|"write_locks":100|})));
  (* evictions: ratio 2, floor 16 *)
  Alcotest.(check int) "eviction storm breaches" 1
    (List.length
       (breaches (compare_rows {|"evictions":8|} {|"evictions":40|})));
  Alcotest.(check int) "eviction wiggle passes" 0
    (List.length
       (breaches (compare_rows {|"evictions":8|} {|"evictions":12|})));
  (* recovery storm: ratio 2, floor 64 *)
  Alcotest.(check int) "replayed_records 3x breaches" 1
    (List.length
       (breaches
          (compare_rows {|"replayed_records":100|} {|"replayed_records":300|})));
  Alcotest.(check int) "replayed_records under floor passes" 0
    (List.length
       (breaches
          (compare_rows {|"replayed_records":10|} {|"replayed_records":50|})));
  Alcotest.(check int) "replayed_records wiggle passes" 0
    (List.length
       (breaches
          (compare_rows {|"replayed_records":100|} {|"replayed_records":150|})));
  (* an info delta is reported but does not gate *)
  let info = compare_rows {|"walks":10|} {|"walks":11|} in
  Alcotest.(check int) "changed key is one info finding" 1
    (List.length info.R.findings);
  Alcotest.(check bool) "info does not breach" false (R.has_breach info)

let test_degraded_rejection_rule () =
  (* breaches without a baseline counterpart, like tracer drops *)
  let base = parse {|{"counters":[],"histograms":[]}|} in
  let cur =
    parse
      {|{"counters":[{"name":"fleet.degraded_rejections","value":2}],"histograms":[]}|}
  in
  Alcotest.(check bool) "rejections > 0 breach baseline-absent" true
    (R.has_breach (R.compare_files ~baseline:base ~current:cur));
  (* with a baseline, an unchanged soak passes (self-compare must stay
     clean) but a surge past 2x breaches *)
  Alcotest.(check bool) "unchanged rejections pass" false
    (R.has_breach
       (compare_rows {|"degraded_rejections":2|} {|"degraded_rejections":2|}));
  Alcotest.(check bool) "rejection surge breaches" true
    (R.has_breach
       (compare_rows {|"degraded_rejections":2|} {|"degraded_rejections":9|}));
  Alcotest.(check bool) "first rejection over a zero baseline breaches" true
    (R.has_breach
       (compare_rows {|"degraded_rejections":0|} {|"degraded_rejections":1|}));
  Alcotest.(check bool) "rejections = 0 pass" false
    (R.has_breach
       (compare_rows {|"degraded_rejections":0|} {|"degraded_rejections":0|}))

let test_tracer_drop_rule () =
  let base = parse {|{"counters":[],"histograms":[]}|} in
  let cur =
    parse
      {|{"counters":[{"name":"obs.trace.dropped","value":3}],"histograms":[]}|}
  in
  let r = R.compare_files ~baseline:base ~current:cur in
  (* breaches even though the baseline has no such key *)
  Alcotest.(check bool) "dropped > 0 breaches" true (R.has_breach r);
  let clean =
    parse
      {|{"counters":[{"name":"obs.trace.dropped","value":0}],"histograms":[]}|}
  in
  Alcotest.(check bool) "dropped = 0 passes" false
    (R.has_breach (R.compare_files ~baseline:base ~current:clean))

let test_one_sided_keys_ignored () =
  let base = doc {|"walks":10,"only_base":1|} in
  let cur = doc {|"walks":10,"only_cur":2|} in
  let r = R.compare_files ~baseline:base ~current:cur in
  Alcotest.(check int) "shared keys compared" 1 r.R.compared;
  Alcotest.(check int) "baseline-only counted" 1 r.R.baseline_only;
  Alcotest.(check int) "current-only counted" 1 r.R.current_only;
  Alcotest.(check int) "neither is a finding" 0 (List.length r.R.findings)

let test_render () =
  let r = compare_rows {|"p99_ns":1000|} {|"p99_ns":4000|} in
  let table = R.render_table ~baseline_path:"a.json" ~current_path:"b.json" r in
  let json = R.render_json ~baseline_path:"a.json" ~current_path:"b.json" r in
  let contains hay sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "table names the breach" true
    (contains table "BREACH");
  Alcotest.(check bool) "table names the rule" true
    (contains table "p99 regression");
  Alcotest.(check bool) "json is an obs_report" true
    (contains json "\"kind\":\"obs_report\"");
  Alcotest.(check bool) "json counts breaches" true
    (contains json "\"breaches\":1");
  (* the rendered JSON parses back *)
  match parse json with
  | R.Obj _ -> ()
  | _ -> Alcotest.fail "render_json did not produce an object"

(* --- end-to-end: the dump and the series are domain-invariant --- *)

let test_faultsim_dump_domain_invariant () =
  let module F = Pt_service.Faultsim in
  let cfg = { F.default_config with F.seed = 3; ops = 400 } in
  let episode domains =
    let outcome = F.run { cfg with F.domains } in
    Alcotest.(check bool) "soak ends clean" true outcome.F.fsck_clean;
    Obs.Recorder.dump_json ~last:64 ~label:"faultsim" ()
  in
  let d1 = episode 1 in
  let d2 = episode 2 in
  Alcotest.(check bool) "dump is nonempty" true (String.length d1 > 100);
  Alcotest.(check string) "crash dump byte-identical across domains" d1 d2;
  Obs.Recorder.disarm ()

let series_json () =
  let buf = Buffer.create 1024 in
  Obs.Series.write_json_fields buf;
  Buffer.contents buf

let test_fleet_series_domain_invariant () =
  let module FS = Fleet.Fleet_sim in
  let tiny =
    {
      FS.quick_config with
      FS.tenants = 6;
      shards = 2;
      streams = 4;
      ops_per_tenant = 400;
      orgs = [ Pt_service.Service.Clustered ];
    }
  in
  let episode domains =
    Obs.Ambient.reset ();
    Obs.Series.reset ();
    ignore (FS.run { tiny with FS.domains });
    series_json ()
  in
  let d1 = episode 1 in
  let d4 = episode 4 in
  Alcotest.(check bool) "series is nonempty" true
    (String.length d1 > String.length "\"series\":[]");
  Alcotest.(check string) "fleet series byte-identical across domains" d1 d4;
  Obs.Recorder.disarm ()

let test_churn_series_domain_invariant () =
  let episode domains =
    Obs.Ambient.reset ();
    Obs.Series.reset ();
    ignore (Sim.Runner.churn ~domains ~seeds:1 ~ops:400 ());
    series_json ()
  in
  let d1 = episode 1 in
  let d4 = episode 4 in
  Alcotest.(check bool) "series is nonempty" true
    (String.length d1 > String.length "\"series\":[]");
  Alcotest.(check string) "churn series byte-identical across domains" d1 d4

let suite =
  ( "report",
    [
      Alcotest.test_case "flatten: metrics, outcomes, benchmarks" `Quick
        test_flatten_shapes;
      QCheck_alcotest.to_alcotest prop_bucket_quantile_matches_hist;
      Alcotest.test_case "threshold rules" `Quick test_rules;
      Alcotest.test_case "tracer drop rule" `Quick test_tracer_drop_rule;
      Alcotest.test_case "degraded rejection rule" `Quick
        test_degraded_rejection_rule;
      Alcotest.test_case "one-sided keys are ignored" `Quick
        test_one_sided_keys_ignored;
      Alcotest.test_case "renderings" `Quick test_render;
      Alcotest.test_case "faultsim dump domain-invariant" `Slow
        test_faultsim_dump_domain_invariant;
      Alcotest.test_case "fleet series domain-invariant" `Slow
        test_fleet_series_domain_invariant;
      Alcotest.test_case "churn series domain-invariant" `Slow
        test_churn_series_domain_invariant;
    ] )
