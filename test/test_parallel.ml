(* The parallel harness contract: every experiment entry point returns
   bit-identical results for any domain count, because jobs derive all
   randomness from their workload index, never from execution order. *)

let options =
  {
    Sim.Runner.seed = 0xAAAL;
    length = 8_000;
    placement_p = 0.9;
    quick = true;
  }

let test_pool_map_order () =
  let inputs = Array.init 100 (fun i -> i) in
  let out = Exec.Domain_pool.map ~domains:4 (fun _ x -> x * x) inputs in
  Alcotest.(check (array int))
    "results land at their input's index"
    (Array.map (fun x -> x * x) inputs)
    out

let test_pool_map_empty () =
  Alcotest.(check (array int))
    "empty input" [||]
    (Exec.Domain_pool.map ~domains:4 (fun _ x -> x) [||])

let test_pool_serial_matches_parallel () =
  let inputs = Array.init 33 (fun i -> i) in
  let f _ x = (x * 7) + 1 in
  Alcotest.(check (array int))
    "domains:1 = domains:4"
    (Exec.Domain_pool.map ~domains:1 f inputs)
    (Exec.Domain_pool.map ~domains:4 f inputs)

let test_pool_propagates_failure () =
  match
    Exec.Domain_pool.map ~domains:4
      (fun _ x -> if x = 5 then failwith "boom" else x)
      (Array.init 16 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Exec.Domain_pool.Job_failed (5, Failure _) -> ()
  | exception e -> raise e

(* --- Worker_pool: the long-lived variant --- *)

let test_worker_pool_runs_each_index_once () =
  Exec.Worker_pool.with_pool ~domains:4 (fun pool ->
      let hits = Array.make 4 0 in
      Exec.Worker_pool.run pool (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int))
        "each worker index ran exactly once" [| 1; 1; 1; 1 |] hits)

let test_worker_pool_reuse_across_jobs () =
  Exec.Worker_pool.with_pool ~domains:3 (fun pool ->
      let acc = Array.make 3 0 in
      for _ = 1 to 10 do
        Exec.Worker_pool.run pool (fun i -> acc.(i) <- acc.(i) + 1)
      done;
      Alcotest.(check (array int))
        "ten jobs through the same domains" [| 10; 10; 10 |] acc)

let test_worker_pool_propagates_failure () =
  Exec.Worker_pool.with_pool ~domains:4 (fun pool ->
      (match
         Exec.Worker_pool.run pool (fun i ->
             if i = 2 then failwith "boom")
       with
      | () -> Alcotest.fail "expected Worker_failed"
      | exception Exec.Worker_pool.Worker_failed [ (2, Failure m) ] ->
          Alcotest.(check string) "original exception carried" "boom" m
      | exception e -> raise e);
      (* the pool must survive a failed job *)
      let ok = Array.make 4 false in
      Exec.Worker_pool.run pool (fun i -> ok.(i) <- true);
      Alcotest.(check bool)
        "pool still dispatches after a failure" true
        (Array.for_all Fun.id ok))

let test_worker_pool_shutdown_idempotent () =
  let pool = Exec.Worker_pool.create ~domains:2 () in
  Exec.Worker_pool.run pool (fun _ -> ());
  Exec.Worker_pool.shutdown pool;
  Exec.Worker_pool.shutdown pool;
  match Exec.Worker_pool.run pool (fun _ -> ()) with
  | () -> Alcotest.fail "run after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

(* --- epoch-based reclamation (the seqlock read path's safety net) --- *)

let test_worker_pool_epoch_lifecycle () =
  let e = Exec.Epoch.create () in
  Exec.Worker_pool.with_pool ~epoch:e ~domains:3 (fun pool ->
      Exec.Worker_pool.run pool (fun _ -> ());
      Alcotest.(check int)
        "every worker holds a reader slot for its lifetime" 3
        (Exec.Epoch.registered e));
  Alcotest.(check int) "slots returned at shutdown" 0 (Exec.Epoch.registered e);
  Alcotest.(check int) "no pins outlive the pool" max_int
    (Exec.Epoch.safe_before e)

(* qcheck: under any pin/refresh/retire interleaving, a stamp handed
   out while a reader is pinned is never strictly below safe_before —
   i.e. the node it protects cannot be recycled under the reader — and
   everything becomes reclaimable once the reader unregisters *)
let prop_epoch_pin_blocks_reclaim =
  QCheck.Test.make
    ~name:"epoch: pinned stamps unreclaimable; unregister releases all"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 2))
    (fun ops ->
      let e = Exec.Epoch.create () in
      Exec.Epoch.register e;
      Exec.Epoch.pin e;
      List.iter
        (fun op ->
          match op with
          | 0 ->
              let stamp = Exec.Epoch.retire_stamp e in
              if stamp < Exec.Epoch.safe_before e then
                QCheck.Test.fail_report
                  "stamp retired under a pin fell below safe_before"
          | 1 -> Exec.Epoch.pin e (* refresh *)
          | _ ->
              if Exec.Epoch.safe_before e = max_int then
                QCheck.Test.fail_report
                  "safe_before claims quiescence while a reader is pinned")
        ops;
      Exec.Epoch.unpin e;
      let quiescent = Exec.Epoch.safe_before e = max_int in
      Exec.Epoch.unregister e;
      if not quiescent then
        QCheck.Test.fail_report "unpin did not release reclamation";
      Exec.Epoch.registered e = 0)

let test_figure9_deterministic () =
  let serial = Sim.Runner.figure9 ~options ~domains:1 () in
  let parallel = Sim.Runner.figure9 ~options ~domains:4 () in
  Alcotest.(check bool)
    "figure 9 rows identical across domain counts" true (serial = parallel)

let test_figure11_deterministic () =
  let run domains =
    Sim.Runner.figure11 ~options ~domains ~design:Sim.Access_exp.Single ()
  in
  Alcotest.(check bool)
    "figure 11a runs identical across domain counts" true (run 1 = run 4)

let test_residency_deterministic () =
  let run domains = Sim.Runner.ablation_residency ~options ~domains () in
  Alcotest.(check bool)
    "residency rows identical across domain counts" true (run 1 = run 4)

(* the PR 4 telemetry contract: per-domain metric shards merge to the
   same registry however the jobs were dealt over domains, because the
   merge is a commutative, associative sum of deterministic per-job
   observations *)
let test_telemetry_domain_invariance () =
  let run domains =
    Obs.Ambient.reset ();
    ignore
      (Sim.Runner.figure11 ~options ~domains ~design:Sim.Access_exp.Single ());
    Obs.Ambient.merged ()
  in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check bool)
    "merged os.* metrics identical across domain counts" true
    (Obs.Metrics.equal serial parallel);
  Alcotest.(check bool)
    "misses were recorded" true
    (Obs.Metrics.value (Obs.Metrics.counter serial "sim.tlb_misses") > 0);
  Alcotest.(check bool)
    "walk-line histograms were recorded" true
    (Obs.Hist.count (Obs.Metrics.hist serial "sim.walk_lines.hashed") > 0);
  Obs.Ambient.reset ()

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool map order" `Quick test_pool_map_order;
      Alcotest.test_case "pool empty input" `Quick test_pool_map_empty;
      Alcotest.test_case "pool serial = parallel" `Quick
        test_pool_serial_matches_parallel;
      Alcotest.test_case "pool failure propagation" `Quick
        test_pool_propagates_failure;
      Alcotest.test_case "worker pool index coverage" `Quick
        test_worker_pool_runs_each_index_once;
      Alcotest.test_case "worker pool reuse across jobs" `Quick
        test_worker_pool_reuse_across_jobs;
      Alcotest.test_case "worker pool failure propagation" `Quick
        test_worker_pool_propagates_failure;
      Alcotest.test_case "worker pool shutdown" `Quick
        test_worker_pool_shutdown_idempotent;
      Alcotest.test_case "worker pool epoch lifecycle" `Quick
        test_worker_pool_epoch_lifecycle;
      QCheck_alcotest.to_alcotest prop_epoch_pin_blocks_reclaim;
      Alcotest.test_case "figure 9 domain-count invariance" `Slow
        test_figure9_deterministic;
      Alcotest.test_case "figure 11 domain-count invariance" `Slow
        test_figure11_deterministic;
      Alcotest.test_case "residency domain-count invariance" `Slow
        test_residency_deterministic;
      Alcotest.test_case "telemetry domain-count invariance" `Slow
        test_telemetry_domain_invariance;
    ] )
