(* Crash consistency (lib/durable + the chaos driver): WAL framing,
   torn-tail truncation and compaction; the qcheck recovery oracle —
   for ANY crash prefix (with or without a checkpoint in it, on both
   organizations) recovery rebuilds exactly the acknowledged-op state
   and never resurrects any page of the torn op; the double-crash
   (crash during recovery replay) and torn-checkpoint fallback paths;
   and the chaos soak's gate plus its domain-count invariance. *)

module W = Durable.Wal
module D = Durable.Shard
module CS = Fleet.Chaos_sim
module S = Pt_service.Service

let ppn_of vpn = Int64.add vpn 0x7_0000L

let mk_shard org = D.create ~buckets:64 ~org ~locking:S.Striped ~ppn_of ()

(* a seed-derived op script over a small vpn window so regions overlap
   and replay order matters *)
let script_of_seed seed n =
  List.init n (fun i ->
      let r = Addr.Bits.mix64 (Int64.of_int ((seed * 9_176_263) + i)) in
      let vpn = Int64.logand r 0xFFL in
      let pages =
        1 + Int64.to_int (Int64.logand (Int64.shift_right_logical r 16) 0x7L)
      in
      match Int64.to_int (Int64.logand (Int64.shift_right_logical r 32) 3L) with
      | 0 | 3 -> W.Map { asid = 1; vpn; pages }
      | 1 -> W.Unmap { asid = 1; vpn; pages }
      | _ ->
          W.Protect
            {
              asid = 1;
              vpn;
              pages;
              writable = Int64.logand (Int64.shift_right_logical r 40) 1L = 0L;
            })

(* the acknowledged-op oracle, mirrored from the chaos driver *)
let model_apply model op =
  let each vpn pages f =
    for i = 0 to pages - 1 do
      f (Int64.add vpn (Int64.of_int i))
    done
  in
  match op with
  | W.Map { vpn; pages; _ } -> each vpn pages (fun k -> Hashtbl.replace model k true)
  | W.Unmap { vpn; pages; _ } -> each vpn pages (Hashtbl.remove model)
  | W.Protect { vpn; pages; writable; _ } ->
      each vpn pages (fun k ->
          if Hashtbl.mem model k then Hashtbl.replace model k writable)

let model_live model =
  Hashtbl.fold
    (fun vpn w acc ->
      (vpn, ppn_of vpn, { Pte.Attr.default with Pte.Attr.writable = w }) :: acc)
    model []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b)

let check_live ~what shard model =
  let expected = model_live model in
  let actual = D.live shard in
  if List.length actual <> List.length expected then
    Alcotest.failf "%s: %d live mappings, expected %d" what
      (List.length actual) (List.length expected);
  List.iter2
    (fun (v1, p1, a1) (v2, p2, a2) ->
      if not (Int64.equal v1 v2 && Int64.equal p1 p2 && Pte.Attr.equal a1 a2)
      then
        Alcotest.failf "%s: mapping (0x%Lx,0x%Lx) <> expected (0x%Lx,0x%Lx)"
          what v1 p1 v2 p2)
    actual expected

(* --- WAL unit tests --- *)

let test_wal_roundtrip_and_torn_tail () =
  let w = W.create () in
  let ops = script_of_seed 5 20 in
  List.iter (W.append w) ops;
  Alcotest.(check int) "records" 20 (W.records w);
  Alcotest.(check int) "length" (20 * W.record_bytes) (W.length w);
  let got, torn = W.scan w ~from:0 in
  Alcotest.(check int) "no torn tail" 0 torn;
  Alcotest.(check int) "all decoded" 20 (List.length got);
  Alcotest.(check bool) "roundtrip" true (got = ops);
  (* a crash mid-record leaves a torn tail; scan truncates it, and a
     second scan sees nothing to do (idempotent) *)
  W.plan_crash w ~at:(W.length w + 11);
  (try
     W.append w (W.Map { asid = 1; vpn = 7L; pages = 3 });
     Alcotest.fail "planned crash did not fire"
   with Fault.Injected { site = Fault.Shard_crash; _ } -> ());
  Alcotest.(check int) "partial bytes flushed" ((20 * W.record_bytes) + 11)
    (W.length w);
  let got2, torn2 = W.scan w ~from:0 in
  Alcotest.(check int) "torn tail truncated" 11 torn2;
  Alcotest.(check int) "torn record not decoded" 20 (List.length got2);
  Alcotest.(check bool) "roundtrip after truncation" true (got2 = ops);
  let _, torn3 = W.scan w ~from:0 in
  Alcotest.(check int) "idempotent" 0 torn3;
  Alcotest.(check int) "one truncation counted" 1 (W.torn_truncations w)

let test_wal_boundary_crash_and_compaction () =
  let w = W.create () in
  let ops = script_of_seed 6 10 in
  List.iter (W.append w) ops;
  (* crash exactly on a record boundary: zero partial bytes *)
  W.plan_crash w ~at:(W.length w);
  (try
     W.append w (W.Map { asid = 1; vpn = 1L; pages = 1 });
     Alcotest.fail "boundary crash did not fire"
   with Fault.Injected { site = Fault.Shard_crash; _ } -> ());
  Alcotest.(check int) "nothing flushed" (10 * W.record_bytes) (W.length w);
  let _, torn = W.scan w ~from:0 in
  Alcotest.(check int) "nothing to truncate" 0 torn;
  (* compaction drops history below the offset but keeps absolute
     addressing: a suffix scan still decodes the surviving records *)
  let upto = 4 * W.record_bytes in
  W.compact w ~upto;
  Alcotest.(check int) "base advanced" upto (W.base w);
  Alcotest.(check int) "length is absolute" (10 * W.record_bytes) (W.length w);
  let got, _ = W.scan w ~from:upto in
  Alcotest.(check bool) "suffix survives compaction" true
    (got = List.filteri (fun i _ -> i >= 4) ops);
  Alcotest.(check bool) "scan below base rejected" true
    (match W.scan w ~from:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- the recovery oracle, as a qcheck property over both orgs ---

   Script n ops.  Optionally checkpoint after [c] of them.  Submit a
   prefix of k ops, then plan a crash [tear] bytes into op k's record;
   op k tears, the shard goes down, recovery must rebuild exactly the
   k-op model — in particular no page of torn op k beyond what the
   model already had.  Then replay op k and the rest; the final table
   must equal the full-script model. *)

let prop_recovery_prefix_oracle =
  QCheck.Test.make ~count:60 ~name:"recovery = acknowledged prefix (any crash)"
    QCheck.(
      quad (int_bound 1_000_000) (int_range 8 40) (int_range 0 100)
        (pair (int_range 0 100) (int_bound (W.record_bytes - 1))))
    (fun (seed, n, kf, (cf, tear)) ->
      let k = 1 + (kf * (n - 2) / 100) in
      let ckpt = if cf mod 3 = 0 then None else Some (cf * k / 100) in
      List.for_all
        (fun org ->
          let sh = mk_shard org in
          let model = Hashtbl.create 64 in
          let ops = script_of_seed seed n in
          List.iteri
            (fun i op ->
              if Some i = ckpt then D.checkpoint sh;
              ignore (D.submit sh op);
              model_apply model op)
            (List.filteri (fun i _ -> i < k) ops);
          let crashed_op = List.nth ops k in
          W.plan_crash (D.wal sh) ~at:(W.length (D.wal sh) + tear);
          (match D.submit sh crashed_op with
          | _ -> QCheck.Test.fail_reportf "crash at op %d did not fire" k
          | exception Fault.Injected { site = Fault.Shard_crash; _ } -> ());
          if D.up sh then QCheck.Test.fail_report "shard still up after crash";
          (match D.submit sh crashed_op with
          | _ -> QCheck.Test.fail_report "down shard accepted an op"
          | exception D.Down -> ());
          D.recover sh;
          if not (D.up sh) then QCheck.Test.fail_report "recovery left shard down";
          check_live ~what:(S.org_name org ^ ": post-crash") sh model;
          (* the crashed op was never acknowledged: replay it (as the
             fleet's pending-drain does), then the rest of the script *)
          List.iteri
            (fun i op ->
              if i >= k then begin
                ignore (D.submit sh op);
                model_apply model op
              end)
            ops;
          check_live ~what:(S.org_name org ^ ": full script") sh model;
          Fsck.clean (S.fsck (D.service sh)))
        [ S.Clustered; S.Hashed ])

(* --- double crash: the recovery replay itself dies --- *)

let test_double_crash_converges () =
  let sh = mk_shard S.Clustered in
  let model = Hashtbl.create 64 in
  let ops = script_of_seed 11 24 in
  List.iter
    (fun op ->
      ignore (D.submit sh op);
      model_apply model op)
    ops;
  W.plan_crash (D.wal sh) ~at:(W.length (D.wal sh) + 5);
  (try ignore (D.submit sh (W.Map { asid = 1; vpn = 3L; pages = 2 }))
   with Fault.Injected _ -> ());
  D.plan_recovery_crash sh ~after_records:6;
  (try
     D.recover sh;
     Alcotest.fail "recovery crash did not fire"
   with Fault.Injected { site = Fault.Shard_crash; _ } -> ());
  Alcotest.(check bool) "still down after recovery crash" false (D.up sh);
  Alcotest.(check int) "recovery crash counted" 1 (D.recovery_crashes sh);
  (* the WAL stayed readable: the second recovery converges *)
  D.recover sh;
  Alcotest.(check bool) "up after second recovery" true (D.up sh);
  check_live ~what:"after double crash" sh model;
  Alcotest.(check int) "attempts" 2 (D.recovery_attempts sh);
  Alcotest.(check int) "completions" 1 (D.recoveries sh)

(* --- torn checkpoint: fall back to the previous one + longer suffix --- *)

let test_torn_checkpoint_falls_back () =
  let sh = mk_shard S.Hashed in
  let model = Hashtbl.create 64 in
  let step op =
    ignore (D.submit sh op);
    model_apply model op
  in
  let ops = script_of_seed 17 30 in
  List.iteri
    (fun i op ->
      step op;
      if i = 9 then D.checkpoint sh)
    ops;
  Alcotest.(check int) "first checkpoint compacted the log" 10
    ((W.base (D.wal sh) / W.record_bytes) + 0);
  D.plan_checkpoint_crash sh;
  (try
     D.checkpoint sh;
     Alcotest.fail "checkpoint crash did not fire"
   with Fault.Injected { site = Fault.Shard_crash; _ } -> ());
  Alcotest.(check bool) "down after torn checkpoint" false (D.up sh);
  Alcotest.(check int) "torn checkpoint counted" 1 (D.torn_checkpoints sh);
  D.recover sh;
  Alcotest.(check int) "torn snapshot discarded" 1 (D.checkpoints_discarded sh);
  Alcotest.(check bool) "replayed past the good checkpoint" true
    (D.replayed_records sh >= 20);
  check_live ~what:"fallback recovery" sh model;
  (* a later complete checkpoint still works on the recovered shard *)
  D.checkpoint sh;
  List.iter step (script_of_seed 23 5);
  W.plan_crash (D.wal sh) ~at:(W.length (D.wal sh) + 1);
  (try ignore (D.submit sh (W.Unmap { asid = 1; vpn = 0L; pages = 4 }))
   with Fault.Injected _ -> ());
  D.recover sh;
  check_live ~what:"post-fallback checkpoint" sh model

(* --- the chaos soak: gate + domain invariance --- *)

let soak_config =
  {
    CS.quick_config with
    CS.tenants = 4;
    shards = 3;
    rounds = 3;
    ops_per_tenant = 300;
    orgs = [ S.Clustered ];
  }

let test_chaos_soak_gate () =
  let outcome = CS.run soak_config in
  Alcotest.(check bool) "all clean" true (CS.all_clean outcome);
  match outcome.CS.rows with
  | [ r ] ->
      Alcotest.(check bool) "crashes happened" true (r.CS.c_crashes > 0);
      Alcotest.(check bool) "recoveries happened" true (r.CS.c_recoveries > 0);
      Alcotest.(check bool) "degraded ops were rejected" true
        (r.CS.c_degraded_rejections > 0);
      Alcotest.(check bool) "parked ops were drained" true
        (r.CS.c_pending_replayed > 0);
      Alcotest.(check bool) "a recovery was crashed" true
        (r.CS.c_recovery_crashes > 0);
      Alcotest.(check bool) "a checkpoint was torn" true
        (r.CS.c_torn_checkpoints > 0);
      Alcotest.(check int) "limbo drained" 0 r.CS.c_limbo
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_chaos_domain_invariance () =
  let j d =
    CS.outcome_to_json soak_config
      (CS.run { soak_config with CS.domains = d })
  in
  let one = j 1 in
  Alcotest.(check string) "3 domains = 1 domain" one (j 3);
  let contains sub =
    let n = String.length sub and m = String.length one in
    let rec go i = i + n <= m && (String.sub one i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timing never in deterministic JSON" false
    (contains "elapsed_s")

let suite =
  ( "durable",
    [
      Alcotest.test_case "wal roundtrip and torn tail" `Quick
        test_wal_roundtrip_and_torn_tail;
      Alcotest.test_case "wal boundary crash and compaction" `Quick
        test_wal_boundary_crash_and_compaction;
      QCheck_alcotest.to_alcotest prop_recovery_prefix_oracle;
      Alcotest.test_case "double crash converges" `Quick
        test_double_crash_converges;
      Alcotest.test_case "torn checkpoint falls back" `Quick
        test_torn_checkpoint_falls_back;
      Alcotest.test_case "chaos soak gate" `Slow test_chaos_soak_gate;
      Alcotest.test_case "chaos domain-invariant" `Slow
        test_chaos_domain_invariance;
    ] )
