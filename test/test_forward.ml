(* Forward-mapped page table: the seven-level tree the paper rules out
   for 64-bit spaces, plus the inverted and software-TLB variants. *)

module F = Baselines.Forward_mapped_pt
module Types = Pt_common.Types

let attr = Pte.Attr.default

let instance ?sp_strategy () =
  Pt_common.Intf.Instance ((module F), F.create ?sp_strategy ())

let test_seven_reads_per_miss () =
  let t = F.create () in
  F.insert_base t ~vpn:0x41034L ~ppn:0x55L ~attr;
  match F.lookup t ~vpn:0x41034L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 0x55L tr.Types.ppn;
      (* "the overhead of seven memory accesses on every TLB miss is
         not acceptable" (Section 2) *)
      Alcotest.(check int) "seven probes" 7 walk.Types.probes;
      Alcotest.(check int) "seven lines" 7 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let test_failed_walk_stops_early () =
  let t = F.create () in
  F.insert_base t ~vpn:0L ~ppn:0L ~attr;
  (* a totally unrelated address dies at the root *)
  let tr, walk = F.lookup t ~vpn:0xF_0000_0000_0000L in
  Alcotest.(check bool) "faults" true (tr = None);
  Alcotest.(check int) "one probe only" 1 walk.Types.probes

let test_size_per_node () =
  let t = F.create () in
  F.insert_base t ~vpn:0L ~ppn:0L ~attr;
  (* bits [8;8;8;8;8;6;6]: five 2 KB nodes and two 512 B nodes *)
  Alcotest.(check int) "spine size" ((5 * 2048) + (2 * 512)) (F.size_bytes t);
  Alcotest.(check int) "seven nodes" 7 (F.node_count t)

let test_prune () =
  let t = F.create () in
  F.insert_base t ~vpn:0x123456L ~ppn:1L ~attr;
  F.remove t ~vpn:0x123456L;
  Alcotest.(check int) "only the root survives" 1 (F.node_count t);
  Alcotest.(check int) "population zero" 0 (F.population t)

let test_intermediate_superpage () =
  (* with bits [8;...;6;6] the last intermediate level spans 64 pages =
     a 256 KB superpage, stored as ONE word *)
  let t = F.create ~sp_strategy:`Intermediate () in
  F.insert_superpage t ~vpn:0x40L (* 64-page aligned *)
    ~size:Addr.Page_size.kb256 ~ppn:0x400L ~attr;
  (match F.lookup t ~vpn:0x7FL with
  | Some tr, walk ->
      Alcotest.(check int64) "last page of the superpage" 0x43FL tr.Types.ppn;
      (* the walk short-circuits at the intermediate node *)
      Alcotest.(check int) "six probes, not seven" 6 walk.Types.probes
  | None, _ -> Alcotest.fail "intermediate superpage");
  F.remove t ~vpn:0x50L;
  Alcotest.(check int) "one clear removes it" 0 (F.population t)

let test_replicate_superpage () =
  let t = F.create ~sp_strategy:`Replicate () in
  F.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x200L ~attr;
  Alcotest.(check int) "sixteen replicas" 16 (F.population t);
  match F.lookup t ~vpn:0x44L with
  | Some tr, walk ->
      Alcotest.(check int64) "offset" 0x204L tr.Types.ppn;
      Alcotest.(check int) "full-depth walk" 7 walk.Types.probes
  | None, _ -> Alcotest.fail "replica"

let test_block_prefetch_one_descent () =
  let t = F.create () in
  for i = 0 to 15 do
    F.insert_base t ~vpn:(Int64.of_int (0x40 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  let found, walk = F.lookup_block t ~vpn:0x4AL ~subblock_factor:16 in
  Alcotest.(check int) "all sixteen" 16 (List.length found);
  (* six upper levels + one contiguous leaf read *)
  Alcotest.(check int) "seven lines" 7 (Types.walk_lines walk)

let prop_model = Pt_model.model_test ~name:"forward-mapped agrees with model"
    ~make:(fun () -> instance ())

let prop_drain = Pt_model.drain_test ~name:"forward-mapped drains"
    ~make:(fun () -> instance ())

(* --- inverted page table --- *)

module I = Baselines.Inverted_pt

let test_inverted_extra_read () =
  let t = I.create () in
  I.insert_base t ~vpn:5L ~ppn:6L ~attr;
  match I.lookup t ~vpn:5L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 6L tr.Types.ppn;
      (* pointer-array read + node read *)
      Alcotest.(check int) "two lines" 2 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let test_inverted_size_fixed_by_physical_memory () =
  let t = I.create ~slots:64 ~frames:256 () in
  let fixed = (64 * 8) + (256 * 16) in
  Alcotest.(check int) "empty table already full-size" fixed (I.size_bytes t);
  I.insert_base t ~vpn:5L ~ppn:6L ~attr;
  Alcotest.(check int) "size independent of mappings" fixed (I.size_bytes t)

let test_inverted_frame_reuse () =
  let t = I.create ~slots:64 ~frames:256 () in
  I.insert_base t ~vpn:5L ~ppn:6L ~attr;
  (* stealing the frame for another vpn unmaps the old one *)
  I.insert_base t ~vpn:99L ~ppn:6L ~attr;
  Alcotest.(check bool) "old vpn unmapped" true (fst (I.lookup t ~vpn:5L) = None);
  (match I.lookup t ~vpn:99L with
  | Some tr, _ -> Alcotest.(check int64) "new vpn owns the frame" 6L tr.Pt_common.Types.ppn
  | None, _ -> Alcotest.fail "new mapping lost");
  Alcotest.(check int) "one frame used" 1 (I.population t);
  Alcotest.check_raises "frame out of range"
    (Invalid_argument "Inverted_pt.insert_base: frame out of range") (fun () ->
      I.insert_base t ~vpn:1L ~ppn:256L ~attr)

let prop_model_inverted =
  (* frames sized to the model generator's PPN space *)
  QCheck.Test.make ~name:"inverted agrees with model (unique frames)" ~count:100
    (Pt_model.ops_arbitrary ~vpn_space:200 ~len:120)
    (fun ops ->
      (* identity frames keep vpn->ppn unique, as an OS would *)
      let ops =
        List.map
          (function
            | Pt_model.Insert (vpn, _) -> Pt_model.Insert (vpn, vpn)
            | op -> op)
          ops
      in
      Pt_model.agrees
        ~make:(fun () ->
          Pt_common.Intf.Instance ((module I), I.create ~slots:64 ~frames:256 ()))
        ops)

(* --- software TLB / TSB --- *)

module S = Baselines.Software_tlb

let test_tsb_hit_is_one_read () =
  let t = S.create ~entries:64 () in
  S.insert_base t ~vpn:5L ~ppn:6L ~attr;
  match S.lookup t ~vpn:5L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 6L tr.Types.ppn;
      Alcotest.(check int) "TSB hit: one line" 1 (Types.walk_lines walk);
      Alcotest.(check int) "hit counted" 1 (S.tsb_hits t)
  | None, _ -> Alcotest.fail "not found"

let test_tsb_conflict_refill () =
  let t = S.create ~entries:64 () in
  (* vpn 5 and 69 conflict in a 64-entry direct-mapped TSB *)
  S.insert_base t ~vpn:5L ~ppn:50L ~attr;
  S.insert_base t ~vpn:69L ~ppn:690L ~attr;
  (* 69 now owns the slot; 5 must come from the backing table *)
  (match S.lookup t ~vpn:5L with
  | Some tr, walk ->
      Alcotest.(check int64) "still resolvable" 50L tr.Types.ppn;
      Alcotest.(check bool) "paid the backing probe" true
        (Types.walk_lines walk >= 2)
  | None, _ -> Alcotest.fail "evicted mapping lost");
  (* the miss refilled the TSB slot: now it hits again *)
  match S.lookup t ~vpn:5L with
  | Some _, walk ->
      Alcotest.(check int) "refilled: one line" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "refill failed"

let prop_model_swtlb =
  Pt_model.model_test ~name:"software TLB agrees with model"
    ~make:(fun () ->
      Pt_common.Intf.Instance ((module S), S.create ~entries:64 ()))

let suite =
  ( "forward-mapped & variants",
    [
      Alcotest.test_case "seven reads per miss" `Quick test_seven_reads_per_miss;
      Alcotest.test_case "failed walk stops early" `Quick
        test_failed_walk_stops_early;
      Alcotest.test_case "node sizes" `Quick test_size_per_node;
      Alcotest.test_case "prune" `Quick test_prune;
      Alcotest.test_case "intermediate superpage" `Quick
        test_intermediate_superpage;
      Alcotest.test_case "replicated superpage" `Quick test_replicate_superpage;
      Alcotest.test_case "block prefetch" `Quick test_block_prefetch_one_descent;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_drain;
      Alcotest.test_case "inverted: extra read" `Quick test_inverted_extra_read;
      Alcotest.test_case "inverted: size fixed" `Quick
        test_inverted_size_fixed_by_physical_memory;
      Alcotest.test_case "inverted: frame reuse" `Quick test_inverted_frame_reuse;
      QCheck_alcotest.to_alcotest prop_model_inverted;
      Alcotest.test_case "TSB hit" `Quick test_tsb_hit_is_one_read;
      Alcotest.test_case "TSB conflict refill" `Quick test_tsb_conflict_refill;
      QCheck_alcotest.to_alcotest prop_model_swtlb;
    ] )

let test_tsb_set_associative () =
  (* two ways: two conflicting VPNs coexist; a third evicts the LRU *)
  let t = S.create ~entries:8 ~ways:2 () in
  (* set count is 4: vpns 1, 5, 9 share set 1 *)
  S.insert_base t ~vpn:1L ~ppn:10L ~attr;
  S.insert_base t ~vpn:5L ~ppn:50L ~attr;
  let hit vpn =
    let before = S.tsb_hits t in
    ignore (S.lookup t ~vpn);
    S.tsb_hits t > before
  in
  Alcotest.(check bool) "both ways resident" true (hit 1L && hit 5L);
  (* 1 was touched more recently than 5 after the probes above: touch 5
     then insert 9: victim should be 1 *)
  ignore (S.lookup t ~vpn:5L);
  S.insert_base t ~vpn:9L ~ppn:90L ~attr;
  Alcotest.(check bool) "9 resident" true (hit 9L);
  Alcotest.(check bool) "5 survived (recently used)" true (hit 5L);
  Alcotest.(check bool) "1 evicted" false (hit 1L);
  (* the evicted mapping still resolves through the backing table *)
  match S.lookup t ~vpn:1L with
  | Some tr, _ -> Alcotest.(check int64) "backing serves it" 10L tr.Pt_common.Types.ppn
  | None, _ -> Alcotest.fail "mapping lost"

let test_tsb_set_read_cost () =
  let t = S.create ~entries:8 ~ways:4 () in
  S.insert_base t ~vpn:3L ~ppn:30L ~attr;
  match S.lookup t ~vpn:3L with
  | Some _, walk ->
      (* a 4-way set is one 64-byte group: still a single 256B line *)
      Alcotest.(check int) "one line" 1 (Pt_common.Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "TSB set-associative" `Quick test_tsb_set_associative;
        Alcotest.test_case "TSB set read cost" `Quick test_tsb_set_read_cost;
      ] )

(* --- guarded page tables [Lied95] --- *)

let test_guarded_sparse_path_compression () =
  let t = F.create ~guarded:true () in
  F.insert_base t ~vpn:0x123456789L ~ppn:0x1L ~attr;
  match F.lookup t ~vpn:0x123456789L with
  | Some _, walk ->
      (* a lone page: every intermediate is single-child, so only the
         root and the leaf are read *)
      Alcotest.(check int) "two probes" 2 walk.Types.probes
  | None, _ -> Alcotest.fail "not found"

let test_guarded_partially_effective () =
  (* Section 2: "partially effective but still require many levels" —
     once the tree branches, the shared prefix stays compressed but the
     branched suffix is walked in full *)
  let t = F.create ~guarded:true () in
  (* two pages diverging at the second-to-last level *)
  F.insert_base t ~vpn:0x1000L ~ppn:0x1L ~attr;
  F.insert_base t ~vpn:0x2000L ~ppn:0x2L ~attr;
  (match F.lookup t ~vpn:0x1000L with
  | Some _, walk ->
      Alcotest.(check bool) "more than two probes after branching" true
        (walk.Types.probes > 2)
  | None, _ -> Alcotest.fail "not found");
  (* guarded never charges more than unguarded *)
  let u = F.create ~guarded:false () in
  F.insert_base u ~vpn:0x1000L ~ppn:0x1L ~attr;
  F.insert_base u ~vpn:0x2000L ~ppn:0x2L ~attr;
  let probes table vpn =
    (snd (F.lookup table ~vpn)).Types.probes
  in
  Alcotest.(check bool) "guarded <= unguarded" true
    (probes t 0x1000L <= probes u 0x1000L)

let test_guarded_size_discount () =
  let guarded = F.create ~guarded:true () in
  let plain = F.create ~guarded:false () in
  F.insert_base guarded ~vpn:0x123456789L ~ppn:0x1L ~attr;
  F.insert_base plain ~vpn:0x123456789L ~ppn:0x1L ~attr;
  Alcotest.(check bool) "guarded stores less" true
    (F.size_bytes guarded < F.size_bytes plain);
  (* correctness unchanged *)
  Alcotest.(check bool) "translates identically" true
    (fst (F.lookup guarded ~vpn:0x123456789L)
    = fst (F.lookup plain ~vpn:0x123456789L))

let prop_model_guarded =
  Pt_model.model_test ~name:"guarded forward-mapped agrees with model"
    ~make:(fun () ->
      Pt_common.Intf.Instance ((module F), F.create ~guarded:true ()))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "guarded: sparse compression" `Quick
          test_guarded_sparse_path_compression;
        Alcotest.test_case "guarded: partially effective" `Quick
          test_guarded_partially_effective;
        Alcotest.test_case "guarded: size discount" `Quick
          test_guarded_size_discount;
        QCheck_alcotest.to_alcotest prop_model_guarded;
      ] )
