(* Simulated memory, cache-line accounting, cache simulator, buddy
   allocator, page-reservation allocator. *)

let i64 = Alcotest.(check int64)

(* --- Sim_memory --- *)

let test_arena_alignment () =
  let a = Mem.Sim_memory.create () in
  let x = Mem.Sim_memory.alloc a ~bytes:24 ~align:256 in
  let y = Mem.Sim_memory.alloc a ~bytes:24 ~align:256 in
  Alcotest.(check bool) "aligned x" true (Addr.Bits.is_aligned x 8);
  Alcotest.(check bool) "aligned y" true (Addr.Bits.is_aligned y 8);
  Alcotest.(check bool) "disjoint" true (not (Int64.equal x y));
  Alcotest.(check int) "live" 48 (Mem.Sim_memory.live_bytes a)

let test_arena_freelist_reuse () =
  let a = Mem.Sim_memory.create () in
  let x = Mem.Sim_memory.alloc a ~bytes:144 ~align:256 in
  Mem.Sim_memory.free a ~addr:x ~bytes:144 ~align:256;
  let y = Mem.Sim_memory.alloc a ~bytes:144 ~align:256 in
  i64 "freed block reused" x y;
  Alcotest.(check int) "live accounts the reuse" 144
    (Mem.Sim_memory.live_bytes a);
  (* a different size class must not reuse it *)
  let z = Mem.Sim_memory.alloc a ~bytes:24 ~align:256 in
  Alcotest.(check bool) "size classes separate" true (not (Int64.equal z x))

let test_arena_reset () =
  let a = Mem.Sim_memory.create ~base:0x5000L () in
  let x = Mem.Sim_memory.alloc a ~bytes:8 ~align:8 in
  Mem.Sim_memory.reset a;
  let y = Mem.Sim_memory.alloc a ~bytes:8 ~align:8 in
  i64 "restarts at base" x y

(* --- Cache_model --- *)

let test_lines_of_access () =
  let open Mem.Cache_model in
  Alcotest.(check (list int64)) "within one line" [ 0L ]
    (lines_of_access ~line_size:256 { addr = 16L; bytes = 8 });
  Alcotest.(check (list int64)) "straddles" [ 0L; 1L ]
    (lines_of_access ~line_size:256 { addr = 250L; bytes = 16 });
  Alcotest.(check (list int64)) "three lines" [ 1L; 2L; 3L ]
    (lines_of_access ~line_size:64 { addr = 100L; bytes = 130 })

let test_distinct_lines () =
  let open Mem.Cache_model in
  let accesses =
    [
      { addr = 0L; bytes = 8 };
      { addr = 8L; bytes = 8 };
      { addr = 300L; bytes = 8 };
    ]
  in
  Alcotest.(check int) "two distinct 256B lines" 2
    (distinct_lines ~line_size:256 accesses);
  Alcotest.(check int) "64B lines" 2 (distinct_lines ~line_size:64 accesses)

let test_counter () =
  let c = Mem.Cache_model.create_counter ~line_size:256 () in
  let n =
    Mem.Cache_model.record_walk c [ { Mem.Cache_model.addr = 0L; bytes = 8 } ]
  in
  Alcotest.(check int) "first walk lines" 1 n;
  Mem.Cache_model.record_lines c 3;
  Alcotest.(check int) "walks" 2 (Mem.Cache_model.walks c);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Mem.Cache_model.mean_lines c)

(* the clustered node layout arithmetic the paper quotes: a 144-byte
   node aligned to 256 spans these many lines per mapping read *)
let test_paper_line_arithmetic () =
  let walk boff line_size =
    let node = 0x1000L in
    let accesses =
      [
        { Mem.Cache_model.addr = node; bytes = 16 };
        { Mem.Cache_model.addr = Int64.add node 16L; bytes = 8 };
        { Mem.Cache_model.addr = Int64.add node (Int64.of_int (16 + (8 * boff))); bytes = 8 };
      ]
    in
    Mem.Cache_model.distinct_lines ~line_size accesses
  in
  (* 256B lines: always one line *)
  for boff = 0 to 15 do
    Alcotest.(check int) "256B one line" 1 (walk boff 256)
  done;
  (* 64B lines: offsets 6..15 spill to extra lines -> mean 1.625 *)
  let total = ref 0 in
  for boff = 0 to 15 do
    total := !total + walk boff 64
  done;
  Alcotest.(check (float 1e-9)) "64B mean = 1.625 (paper: +0.625)" 1.625
    (float_of_int !total /. 16.0);
  (* 128B lines: offsets 14,15 spill -> mean 1.125 *)
  let total = ref 0 in
  for boff = 0 to 15 do
    total := !total + walk boff 128
  done;
  Alcotest.(check (float 1e-9)) "128B mean = 1.125 (paper: +0.125)" 1.125
    (float_of_int !total /. 16.0)

(* --- Cache_sim --- *)

let test_cache_sim_lru () =
  let c = Mem.Cache_sim.create ~line_size:64 ~sets:1 ~ways:2 () in
  Alcotest.(check bool) "cold miss" false (Mem.Cache_sim.access c 0L);
  Alcotest.(check bool) "hit" true (Mem.Cache_sim.access c 0L);
  ignore (Mem.Cache_sim.access c 64L);
  (* both resident *)
  Alcotest.(check bool) "still resident" true (Mem.Cache_sim.access c 0L);
  ignore (Mem.Cache_sim.access c 128L);
  (* 64L was LRU, evicted *)
  Alcotest.(check bool) "LRU evicted" false (Mem.Cache_sim.access c 64L);
  Alcotest.(check int) "capacity" 128 (Mem.Cache_sim.capacity_bytes c)

let test_cache_sim_ratio () =
  let c = Mem.Cache_sim.create ~sets:16 ~ways:4 () in
  for _ = 1 to 10 do
    ignore (Mem.Cache_sim.access c 0x100L)
  done;
  Alcotest.(check (float 1e-9)) "9/10 hits" 0.9 (Mem.Cache_sim.hit_ratio c);
  Mem.Cache_sim.flush c;
  Alcotest.(check int) "flush resets" 0 (Mem.Cache_sim.hits c)

(* --- Buddy --- *)

let test_buddy_basic () =
  let b = Mem.Buddy.create ~total_pages:64 ~max_order:4 in
  Alcotest.(check int) "all free" 64 (Mem.Buddy.free_pages b);
  let p = Option.get (Mem.Buddy.alloc b ~order:4) in
  Alcotest.(check bool) "block aligned" true (Addr.Bits.is_aligned p 4);
  Alcotest.(check int) "free after" 48 (Mem.Buddy.free_pages b);
  Mem.Buddy.free b ~ppn:p ~order:4;
  Alcotest.(check int) "free restored" 64 (Mem.Buddy.free_pages b)

let test_buddy_split_coalesce () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 in
  let singles = List.init 16 (fun _ -> Option.get (Mem.Buddy.alloc b ~order:0)) in
  Alcotest.(check int) "exhausted" 0 (Mem.Buddy.free_pages b);
  Alcotest.(check bool) "no block available" true
    (Mem.Buddy.alloc b ~order:0 = None);
  (* distinct frames *)
  Alcotest.(check int) "all distinct" 16
    (List.length (List.sort_uniq Int64.compare singles));
  List.iter (fun ppn -> Mem.Buddy.free b ~ppn ~order:0) singles;
  (* everything must coalesce back into one max-order block *)
  Alcotest.(check (option int)) "coalesced to max order" (Some 4)
    (Mem.Buddy.largest_free_order b)

let test_buddy_double_free () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 in
  let p = Option.get (Mem.Buddy.alloc b ~order:2) in
  Mem.Buddy.free b ~ppn:p ~order:2;
  Alcotest.check_raises "double free" (Invalid_argument "Buddy.free: double free")
    (fun () -> Mem.Buddy.free b ~ppn:p ~order:2)

let prop_buddy_conservation =
  QCheck.Test.make ~name:"buddy conserves pages over random alloc/free"
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (int_bound 4))
    (fun orders ->
      let b = Mem.Buddy.create ~total_pages:256 ~max_order:4 in
      let live = ref [] in
      List.iter
        (fun order ->
          match Mem.Buddy.alloc b ~order with
          | Some ppn -> live := (ppn, order) :: !live
          | None -> (
              (* free something and retry *)
              match !live with
              | (ppn, o) :: rest ->
                  Mem.Buddy.free b ~ppn ~order:o;
                  live := rest
              | [] -> ()))
        orders;
      let live_pages =
        List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 !live
      in
      Mem.Buddy.free_pages b + live_pages = 256)

(* --- Phys_alloc (page reservation) --- *)

let test_reservation_placement () =
  let a = Mem.Phys_alloc.create ~total_pages:256 ~subblock_factor:16 in
  (* pages of one virtual block land properly placed *)
  let ppns =
    List.map
      (fun boff ->
        Option.get (Mem.Phys_alloc.alloc_page a ~vpn:(Int64.of_int (32 + boff))))
      [ 0; 5; 9; 15 ]
  in
  List.iteri
    (fun i ppn ->
      let vpn = Int64.of_int (32 + List.nth [ 0; 5; 9; 15 ] i) in
      Alcotest.(check bool) "properly placed" true
        (Mem.Phys_alloc.properly_placed a ~vpn ~ppn))
    ppns;
  let stats = Mem.Phys_alloc.stats a in
  Alcotest.(check int) "one reservation" 1 stats.Mem.Phys_alloc.reservations_made;
  Alcotest.(check int) "three hits" 3 stats.Mem.Phys_alloc.reservation_hits

let test_reservation_exhaustion () =
  (* 32 frames, factor 16: two reservations fit; the third virtual
     block preempts and falls back to singles *)
  let a = Mem.Phys_alloc.create ~total_pages:32 ~subblock_factor:16 in
  let p1 = Mem.Phys_alloc.alloc_page a ~vpn:0L in
  let p2 = Mem.Phys_alloc.alloc_page a ~vpn:16L in
  let p3 = Mem.Phys_alloc.alloc_page a ~vpn:32L in
  Alcotest.(check bool) "all allocations succeed" true
    (p1 <> None && p2 <> None && p3 <> None);
  let stats = Mem.Phys_alloc.stats a in
  Alcotest.(check bool) "third came from preemption + fallback" true
    (stats.Mem.Phys_alloc.preemptions >= 1
    && stats.Mem.Phys_alloc.fallback_allocs >= 1)

let test_reservation_free_cycle () =
  let a = Mem.Phys_alloc.create ~total_pages:64 ~subblock_factor:16 in
  let ppn = Option.get (Mem.Phys_alloc.alloc_page a ~vpn:5L) in
  let before = Mem.Phys_alloc.free_pages a in
  Mem.Phys_alloc.free_page a ~vpn:5L ~ppn;
  Alcotest.(check int) "whole reservation returns when last page freed"
    (before + 16)
    (Mem.Phys_alloc.free_pages a);
  (* reallocation reuses a clean reservation *)
  let ppn2 = Option.get (Mem.Phys_alloc.alloc_page a ~vpn:5L) in
  Alcotest.(check bool) "placed again" true
    (Mem.Phys_alloc.properly_placed a ~vpn:5L ~ppn:ppn2)

let prop_reservation_all_placed_when_plenty =
  QCheck.Test.make
    ~name:"with ample memory every page is properly placed" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 64) (int_bound 255))
    (fun vpns ->
      let a = Mem.Phys_alloc.create ~total_pages:4096 ~subblock_factor:16 in
      List.for_all
        (fun v ->
          let vpn = Int64.of_int v in
          match Mem.Phys_alloc.alloc_page a ~vpn with
          | Some ppn -> Mem.Phys_alloc.properly_placed a ~vpn ~ppn
          | None -> false)
        (List.sort_uniq compare vpns |> List.map (fun v -> v)))

let suite =
  ( "mem",
    [
      Alcotest.test_case "arena alignment" `Quick test_arena_alignment;
      Alcotest.test_case "arena free-list reuse" `Quick test_arena_freelist_reuse;
      Alcotest.test_case "arena reset" `Quick test_arena_reset;
      Alcotest.test_case "lines of access" `Quick test_lines_of_access;
      Alcotest.test_case "distinct lines" `Quick test_distinct_lines;
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "paper's line-span arithmetic" `Quick
        test_paper_line_arithmetic;
      Alcotest.test_case "cache sim LRU" `Quick test_cache_sim_lru;
      Alcotest.test_case "cache sim ratio" `Quick test_cache_sim_ratio;
      Alcotest.test_case "buddy basics" `Quick test_buddy_basic;
      Alcotest.test_case "buddy split/coalesce" `Quick test_buddy_split_coalesce;
      Alcotest.test_case "buddy double free" `Quick test_buddy_double_free;
      QCheck_alcotest.to_alcotest prop_buddy_conservation;
      Alcotest.test_case "reservation placement" `Quick test_reservation_placement;
      Alcotest.test_case "reservation exhaustion" `Quick
        test_reservation_exhaustion;
      Alcotest.test_case "reservation free cycle" `Quick
        test_reservation_free_cycle;
      QCheck_alcotest.to_alcotest prop_reservation_all_placed_when_plenty;
    ] )

(* buddy blocks are always aligned to their order and pairwise disjoint *)
let prop_buddy_blocks_disjoint =
  QCheck.Test.make ~name:"buddy blocks aligned and disjoint" ~count:80
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 3))
    (fun orders ->
      let b = Mem.Buddy.create ~total_pages:128 ~max_order:3 in
      let live = ref [] in
      List.iter
        (fun order ->
          match Mem.Buddy.alloc b ~order with
          | Some ppn -> live := (ppn, order) :: !live
          | None -> ())
        orders;
      List.for_all
        (fun (ppn, order) -> Addr.Bits.is_aligned ppn order)
        !live
      &&
      let ranges =
        List.map
          (fun (ppn, order) ->
            (Int64.to_int ppn, Int64.to_int ppn + (1 lsl order) - 1))
          !live
        |> List.sort compare
      in
      let rec disjoint = function
        | (_, l1) :: ((f2, _) :: _ as rest) -> l1 < f2 && disjoint rest
        | _ -> true
      in
      disjoint ranges)

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest prop_buddy_blocks_disjoint ] )
