(* The concurrent page-table service (lib/service): a
   linearizability-style oracle, the Section 3.1 lock-granularity
   claim, and determinism of the churn replay.

   Oracle shape: N domains hammer one shared service with mixed
   lookup/insert/remove/protect traffic.  Each domain owns a disjoint
   key set (buckets still collide, so stripes are contended) and
   records its operations and observations in program order; replaying
   those histories against the sequential Hashtbl model (Pt_model)
   must explain every observation and reproduce the final table. *)

module Service = Pt_service.Service
module Types = Pt_common.Types

let attr = Pte.Attr.default

(* --- concurrent history oracle --- *)

let ops_per_domain = 3_000

let num_domains = 4

let vpns_per_domain = 512

(* interleaved ranges: consecutive keys belong to different domains,
   so neighbouring buckets and blocks are shared between domains even
   though keys are not *)
let vpn_of ~domain ~o =
  Int64.of_int ((o * num_domains) + domain)

let domain_traffic svc ~domain =
  let rng = Random.State.make [| 0xC0FFEE; domain |] in
  let hist = ref [] in
  let record op = hist := op :: !hist in
  for _ = 1 to ops_per_domain do
    let o = Random.State.int rng vpns_per_domain in
    let vpn = vpn_of ~domain ~o in
    match Random.State.int rng 100 with
    | r when r < 40 ->
        let hit = Service.lookup svc ~vpn in
        record (Pt_model.HLookup (vpn, hit))
    | r when r < 70 ->
        let ppn = Int64.of_int (Random.State.int rng 0xFFFFF) in
        Service.insert svc ~vpn ~ppn ~attr;
        record (Pt_model.HInsert (vpn, ppn))
    | r when r < 95 ->
        Service.remove svc ~vpn;
        record (Pt_model.HRemove vpn)
    | _ ->
        (* a protect over this domain's keys only: strided keys mean a
           contiguous region would cross ownership, so protect exactly
           one page (granularity is covered by its own test below) *)
        let searches =
          Service.protect svc
            (Addr.Region.make ~first_vpn:vpn ~pages:1)
            ~writable:(Random.State.int rng 2 = 0)
        in
        record (Pt_model.HProtect (vpn, 1, searches))
  done;
  List.rev !hist

let oracle ~org ~locking () =
  let svc = Service.create ~org ~locking () in
  let histories = Array.make num_domains [] in
  Exec.Worker_pool.with_pool
    ?epoch:(Service.reader_epoch svc)
    ~domains:num_domains
    (fun pool ->
      Exec.Worker_pool.run pool (fun domain ->
          histories.(domain) <- domain_traffic svc ~domain));
  Alcotest.(check bool)
    "every observation explained by the sequential model; final state \
     reproduced"
    true
    (Pt_model.check_histories
       ~lookup:(fun vpn -> Service.lookup svc ~vpn)
       ~population:(Service.population svc)
       (Array.to_list histories));
  Alcotest.(check int) "all stripes released"
    0
    (Service.lock_stats svc).Service.currently_held;
  (* workers unregistered at pool shutdown, so every limbo node must
     now be reclaimable (locked modes report 0 throughout) *)
  Service.quiesce svc;
  Alcotest.(check int) "limbo drained at quiescence" 0
    (Service.limbo_nodes svc)

let test_oracle_clustered_striped () =
  oracle ~org:Service.Clustered ~locking:Service.Striped ()

let test_oracle_hashed_striped () =
  oracle ~org:Service.Hashed ~locking:Service.Striped ()

let test_oracle_clustered_global () =
  oracle ~org:Service.Clustered ~locking:Service.Global ()

let test_oracle_hashed_global () =
  oracle ~org:Service.Hashed ~locking:Service.Global ()

let test_oracle_clustered_seqlock () =
  oracle ~org:Service.Clustered ~locking:Service.Seqlock ()

let test_oracle_hashed_seqlock () =
  oracle ~org:Service.Hashed ~locking:Service.Seqlock ()

(* --- Section 3.1 lock granularity ---

   A range operation on a clustered table acquires one write lock per
   page *block*; on a hashed table, one per base *page*; under the
   global lock, one for the whole range. *)

let write_locks_for ~org ~locking region =
  let svc = Service.create ~org ~locking () in
  (* populate the region so the protect really edits PTEs *)
  Addr.Region.iter_vpns region (fun vpn ->
      Service.insert svc ~vpn ~ppn:(Int64.logand vpn 0xFFF_FFFFL) ~attr);
  let before = (Service.lock_stats svc).Service.write_acquisitions in
  ignore (Service.protect svc region ~writable:false);
  (Service.lock_stats svc).Service.write_acquisitions - before

(* --- batched range operations (the fleet's submission path) --- *)

let test_range_ops_sectioning () =
  (* map_range/unmap_range take exactly range_lock_sections write
     sections: per block on clustered striping, per distinct bucket on
     hashed striping, one for the whole range under the global lock *)
  let region = Addr.Region.make ~first_vpn:0x47L ~pages:100 in
  let blocks = List.length (Addr.Region.blocks ~subblock_factor:16 region) in
  let ppn_of vpn = Int64.logand vpn 0xFFF_FFFFL in
  List.iter
    (fun (org, locking, expect) ->
      let svc = Service.create ~org ~locking () in
      let planned = Service.range_lock_sections svc region in
      let before = (Service.lock_stats svc).Service.write_acquisitions in
      let took = Service.map_range svc region ~ppn_of ~attr in
      let acquired =
        (Service.lock_stats svc).Service.write_acquisitions - before
      in
      let name = Service.org_name org ^ "/" ^ Service.locking_name locking in
      Alcotest.(check int) (name ^ ": planned sections") expect planned;
      Alcotest.(check int) (name ^ ": map_range sections") expect took;
      Alcotest.(check int) (name ^ ": lock acquisitions match") expect acquired;
      Alcotest.(check int) (name ^ ": all pages mapped") 100
        (Service.population svc);
      Addr.Region.iter_vpns region (fun vpn ->
          match Service.find svc ~vpn with
          | Some tr -> Alcotest.(check int64) "ppn" (ppn_of vpn) tr.Types.ppn
          | None -> Alcotest.failf "%s: vpn 0x%Lx unmapped" name vpn);
      Alcotest.(check int)
        (name ^ ": unmap_range sections")
        expect
        (Service.unmap_range svc region);
      Alcotest.(check int) (name ^ ": emptied") 0 (Service.population svc);
      Service.quiesce svc;
      Alcotest.(check bool) (name ^ ": fsck clean") true
        (Fsck.clean (Service.fsck svc)))
    [
      (Service.Clustered, Service.Striped, blocks);
      (Service.Clustered, Service.Global, 1);
      (Service.Clustered, Service.Seqlock, blocks);
      (Service.Hashed, Service.Global, 1);
    ]

let test_protect_range_applies () =
  let region = Addr.Region.make ~first_vpn:0x100L ~pages:48 in
  List.iter
    (fun org ->
      let svc = Service.create ~org ~locking:Service.Seqlock () in
      ignore
        (Service.map_range svc region
           ~ppn_of:(fun vpn -> Int64.add vpn 0x9000L)
           ~attr);
      let sections = Service.protect_range svc region ~writable:false in
      Alcotest.(check int)
        (Service.org_name org ^ ": protect sections")
        (Service.range_lock_sections svc region)
        sections;
      Addr.Region.iter_vpns region (fun vpn ->
          match Service.find svc ~vpn with
          | Some tr ->
              Alcotest.(check bool) "write-protected" false
                tr.Types.attr.Pte.Attr.writable
          | None -> Alcotest.failf "vpn 0x%Lx lost by protect_range" vpn))
    [ Service.Clustered; Service.Hashed ]

let test_protect_lock_granularity () =
  (* 100 pages starting mid-block: offset 7 in block 4 -> touches
     blocks 4..10 inclusive = 7 blocks of factor 16 *)
  let region = Addr.Region.make ~first_vpn:0x47L ~pages:100 in
  let blocks = List.length (Addr.Region.blocks ~subblock_factor:16 region) in
  Alcotest.(check int) "sanity: the region spans 7 blocks" 7 blocks;
  Alcotest.(check int) "clustered+striped: one lock per block" blocks
    (write_locks_for ~org:Service.Clustered ~locking:Service.Striped region);
  Alcotest.(check int) "hashed+striped: one lock per page" 100
    (write_locks_for ~org:Service.Hashed ~locking:Service.Striped region);
  Alcotest.(check int) "clustered+global: one lock per range" 1
    (write_locks_for ~org:Service.Clustered ~locking:Service.Global region);
  Alcotest.(check int) "hashed+global: one lock per range" 1
    (write_locks_for ~org:Service.Hashed ~locking:Service.Global region)

(* protect must actually flip the attribute it claims to *)
let test_protect_applies () =
  let svc = Service.create ~org:Service.Clustered ~locking:Service.Striped () in
  let region = Addr.Region.make ~first_vpn:0x100L ~pages:32 in
  Addr.Region.iter_vpns region (fun vpn ->
      Service.insert svc ~vpn ~ppn:vpn ~attr);
  let searches = Service.protect svc region ~writable:false in
  Alcotest.(check int) "one search per touched block" 2 searches;
  Alcotest.(check bool) "pages still mapped" true
    (Service.lookup svc ~vpn:0x100L)

(* --- throughput driver sanity (correctness, never timing) --- *)

let test_throughput_deterministic_fields () =
  let cfg =
    {
      Pt_service.Throughput.default_config with
      domains = 2;
      ops_per_domain = 2_000;
      vpns_per_domain = 256;
    }
  in
  let a =
    Pt_service.Throughput.run ~org:Service.Clustered ~locking:Service.Striped
      cfg
  in
  let b =
    Pt_service.Throughput.run ~org:Service.Clustered ~locking:Service.Striped
      cfg
  in
  Alcotest.(check int) "total ops" (2 * 2_000) a.Pt_service.Throughput.total_ops;
  Alcotest.(check bool) "some lookups hit" true
    (a.Pt_service.Throughput.lookups_hit > 0);
  Alcotest.(check int) "population reproducible"
    a.Pt_service.Throughput.population b.Pt_service.Throughput.population;
  Alcotest.(check int) "read locks reproducible"
    a.Pt_service.Throughput.read_locks b.Pt_service.Throughput.read_locks;
  Alcotest.(check int) "write locks reproducible"
    a.Pt_service.Throughput.write_locks b.Pt_service.Throughput.write_locks;
  Alcotest.(check int) "hits reproducible" a.Pt_service.Throughput.lookups_hit
    b.Pt_service.Throughput.lookups_hit

(* organizations see the same traffic: identical op streams -> same
   populations and read-lock totals; write totals differ only through
   protect granularity *)
let test_throughput_orgs_agree () =
  let cfg =
    {
      Pt_service.Throughput.default_config with
      domains = 2;
      ops_per_domain = 2_000;
      vpns_per_domain = 256;
    }
  in
  let c =
    Pt_service.Throughput.run ~org:Service.Clustered ~locking:Service.Striped
      cfg
  in
  let h =
    Pt_service.Throughput.run ~org:Service.Hashed ~locking:Service.Striped cfg
  in
  Alcotest.(check int) "same final population"
    c.Pt_service.Throughput.population h.Pt_service.Throughput.population;
  Alcotest.(check int) "same read-lock totals"
    c.Pt_service.Throughput.read_locks h.Pt_service.Throughput.read_locks;
  Alcotest.(check bool)
    "hashed pays at least as many write locks (per-page protects)" true
    (h.Pt_service.Throughput.write_locks
    >= c.Pt_service.Throughput.write_locks)

(* --- the PR 6 lock-free read path --- *)

(* the tentpole claim, structurally: an uncontended seqlock lookup
   acquires zero locks, retries nothing and never falls back *)
let test_seqlock_lockfree_reads () =
  let svc =
    Service.create ~org:Service.Clustered ~locking:Service.Seqlock ()
  in
  for i = 0 to 255 do
    Service.insert svc ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  Service.reset_lock_stats svc;
  for i = 0 to 255 do
    Alcotest.(check bool) "mapped page found" true
      (Service.lookup svc ~vpn:(Int64.of_int i));
    Alcotest.(check bool) "unmapped page missed" false
      (Service.lookup svc ~vpn:(Int64.of_int (i + 4096)))
  done;
  let s = Service.lock_stats svc in
  Alcotest.(check int) "zero read-lock acquisitions" 0
    s.Service.read_acquisitions;
  Alcotest.(check int) "zero write-lock acquisitions" 0
    s.Service.write_acquisitions;
  Alcotest.(check int) "no retries uncontended" 0
    (Service.seqlock_retries svc);
  Alcotest.(check int) "no fallbacks uncontended" 0
    (Service.seqlock_fallbacks svc)

(* epoch-based reclamation through the service: removals park nodes in
   limbo; a pinned reader blocks their reclamation; once the reader
   unregisters, quiesce drains everything and fsck stays clean at each
   step *)
let seqlock_limbo_lifecycle ~org () =
  let svc = Service.create ~org ~locking:Service.Seqlock ~buckets:64 () in
  let epoch =
    match Service.reader_epoch svc with
    | Some e -> e
    | None -> Alcotest.fail "seqlock service must expose its epoch"
  in
  (* two full subblock-16 blocks, so the clustered table also empties
     whole nodes when the first block's pages go *)
  for i = 0 to 31 do
    Service.insert svc ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  Alcotest.(check int) "inserts retire nothing" 0 (Service.limbo_nodes svc);
  Exec.Epoch.register epoch;
  Exec.Epoch.pin epoch;
  for i = 0 to 15 do
    Service.remove svc ~vpn:(Int64.of_int i)
  done;
  let limbo = Service.limbo_nodes svc in
  Alcotest.(check bool) "removals parked nodes in limbo" true (limbo > 0);
  Service.quiesce svc;
  Alcotest.(check int) "pinned reader blocks reclamation" limbo
    (Service.limbo_nodes svc);
  Alcotest.(check bool) "fsck clean with populated limbo" true
    (Fsck.clean (Service.fsck svc));
  Exec.Epoch.unpin epoch;
  Exec.Epoch.unregister epoch;
  Service.quiesce svc;
  Alcotest.(check int) "limbo drains once the reader unregisters" 0
    (Service.limbo_nodes svc);
  Alcotest.(check bool) "fsck clean after the drain" true
    (Fsck.clean (Service.fsck svc));
  for i = 0 to 31 do
    Alcotest.(check bool)
      (Printf.sprintf "page %d %s" i (if i < 16 then "gone" else "survives"))
      (i >= 16)
      (Service.lookup svc ~vpn:(Int64.of_int i))
  done;
  Alcotest.(check int) "population matches" 16 (Service.population svc)

let test_seqlock_limbo_clustered () =
  seqlock_limbo_lifecycle ~org:Service.Clustered ()

let test_seqlock_limbo_hashed () =
  seqlock_limbo_lifecycle ~org:Service.Hashed ()

(* qcheck: for any insert/remove interleaving, a pinned reader keeps
   every node retired under its pin walkable (limbo never shrinks),
   and unregistering releases the lot *)
let prop_seqlock_limbo_drains =
  QCheck.Test.make
    ~name:"seqlock limbo: preserved under a pin, drained after unregister"
    ~count:30
    QCheck.(
      pair bool (list_of_size Gen.(int_range 1 80) (int_bound 511)))
    (fun (clustered, keys) ->
      let org = if clustered then Service.Clustered else Service.Hashed in
      let svc = Service.create ~org ~locking:Service.Seqlock ~buckets:32 () in
      let epoch = Option.get (Service.reader_epoch svc) in
      let model = Hashtbl.create 64 in
      List.iter
        (fun k ->
          let vpn = Int64.of_int k in
          Hashtbl.replace model k ();
          Service.insert svc ~vpn ~ppn:vpn ~attr)
        keys;
      Exec.Epoch.register epoch;
      Exec.Epoch.pin epoch;
      (* remove every other distinct key *)
      let victims =
        List.filteri (fun i _ -> i mod 2 = 0)
          (List.sort_uniq compare (Hashtbl.fold (fun k () a -> k :: a) model []))
      in
      List.iter
        (fun k ->
          Hashtbl.remove model k;
          Service.remove svc ~vpn:(Int64.of_int k))
        victims;
      let limbo = Service.limbo_nodes svc in
      Service.quiesce svc;
      let preserved = Service.limbo_nodes svc = limbo in
      Exec.Epoch.unpin epoch;
      Exec.Epoch.unregister epoch;
      Service.quiesce svc;
      let drained = Service.limbo_nodes svc = 0 in
      let consistent =
        Hashtbl.length model = Service.population svc
        && Fsck.clean (Service.fsck svc)
      in
      if not preserved then
        QCheck.Test.fail_report "pinned reader lost limbo nodes";
      if not drained then
        QCheck.Test.fail_report "limbo survived unregister + quiesce";
      consistent)

(* the read-mostly curve's deterministic fields: the two organizations
   see identical traffic under seqlock locking, and the
   interleaving-invariant fields reproduce run to run *)
let test_throughput_seqlock_deterministic () =
  let cfg =
    {
      Pt_service.Throughput.default_config with
      domains = 4;
      streams = 4;
      ops_per_domain = 2_000;
      vpns_per_domain = 256;
      buckets = 128;
      mix = Pt_service.Throughput.read_mostly_mix;
    }
  in
  let a =
    Pt_service.Throughput.run ~org:Service.Clustered ~locking:Service.Seqlock
      cfg
  in
  let b =
    Pt_service.Throughput.run ~org:Service.Clustered ~locking:Service.Seqlock
      cfg
  in
  let h =
    Pt_service.Throughput.run ~org:Service.Hashed ~locking:Service.Seqlock cfg
  in
  Alcotest.(check bool) "lookups hit" true
    (a.Pt_service.Throughput.lookups_hit > 0);
  Alcotest.(check int) "population reproducible"
    a.Pt_service.Throughput.population b.Pt_service.Throughput.population;
  Alcotest.(check int) "hits reproducible" a.Pt_service.Throughput.lookups_hit
    b.Pt_service.Throughput.lookups_hit;
  Alcotest.(check int) "write locks reproducible"
    a.Pt_service.Throughput.write_locks b.Pt_service.Throughput.write_locks;
  Alcotest.(check int) "population agrees across organizations"
    a.Pt_service.Throughput.population h.Pt_service.Throughput.population;
  (* no protects in the read-mostly mix, so writes are one lock per
     mutation op in both organizations *)
  Alcotest.(check int) "write locks agree across organizations"
    a.Pt_service.Throughput.write_locks h.Pt_service.Throughput.write_locks

(* --- churn replay through the service --- *)

let test_service_replay_domain_invariance () =
  let spec =
    {
      Dynamics.Churn.default with
      Dynamics.Churn.ops = 2_000;
      max_procs = 6;
      max_live_pages = 4_000;
    }
  in
  let trace = Dynamics.Churn.generate ~spec ~seed:0x5EEDL () in
  let run domains =
    Dynamics.Service_replay.run ~domains ~org:Service.Clustered
      ~locking:Service.Striped trace
  in
  let serial = run 1 in
  let parallel = run 3 in
  Alcotest.(check bool)
    "replay results identical for 1 and 3 domains (tallies, population, \
     lock totals)"
    true (serial = parallel);
  Alcotest.(check bool) "replay did real work" true
    (serial.Dynamics.Service_replay.inserts > 0
    && serial.Dynamics.Service_replay.families > 0)

let test_service_replay_drains () =
  (* a drained trace must leave the shared table empty: every family's
     teardown went through the same concurrent service *)
  let spec =
    { Dynamics.Churn.default with Dynamics.Churn.ops = 1_500; max_procs = 5 }
  in
  let trace = Dynamics.Churn.generate ~spec ~seed:0xABCL () in
  let r =
    Dynamics.Service_replay.run ~domains:2 ~org:Service.Hashed
      ~locking:Service.Striped trace
  in
  Alcotest.(check int) "shared table drained" 0
    r.Dynamics.Service_replay.final_population

(* --- PR 4 telemetry: lock-stat reset, domain-invariant metrics --- *)

let test_lock_stats_reset () =
  List.iter
    (fun locking ->
      let svc =
        Service.create ~org:Service.Clustered ~locking ~buckets:64 ()
      in
      for i = 0 to 63 do
        Service.insert svc ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i)
          ~attr:Pte.Attr.default;
        ignore (Service.lookup svc ~vpn:(Int64.of_int i))
      done;
      let before = Service.lock_stats svc in
      (* seqlock lookups are lock-free, so only writes register there *)
      (if locking = Service.Seqlock then
         Alcotest.(check int) "optimistic reads took no locks" 0
           before.Service.read_acquisitions
       else
         Alcotest.(check bool)
           "read traffic recorded" true
           (before.Service.read_acquisitions > 0));
      Alcotest.(check bool)
        "write traffic recorded" true
        (before.Service.write_acquisitions > 0);
      Service.reset_lock_stats svc;
      let after = Service.lock_stats svc in
      Alcotest.(check int) "reads zeroed" 0 after.Service.read_acquisitions;
      Alcotest.(check int) "writes zeroed" 0 after.Service.write_acquisitions;
      Alcotest.(check int) "contention zeroed" 0 after.Service.read_contention;
      Alcotest.(check int) "nothing held" 0 after.Service.currently_held;
      Alcotest.(check int) "retries zeroed" 0 (Service.seqlock_retries svc);
      Alcotest.(check int) "fallbacks zeroed" 0
        (Service.seqlock_fallbacks svc);
      (* the service still works and counts from zero afterwards *)
      ignore (Service.lookup svc ~vpn:1L);
      Alcotest.(check int) "counting restarts"
        (if locking = Service.Seqlock then 0 else 1)
        (Service.lock_stats svc).Service.read_acquisitions)
    [ Service.Striped; Service.Global; Service.Seqlock ]

let test_throughput_metrics_domain_invariant () =
  (* the acceptance criterion: with the stream count pinned, the merged
     telemetry of a 4-domain run is identical to the 1-domain run *)
  let run domains =
    Obs.Ambient.reset ();
    let cfg =
      {
        Pt_service.Throughput.default_config with
        domains;
        streams = 4;
        ops_per_domain = 2_000;
        vpns_per_domain = 256;
      }
    in
    let r =
      Pt_service.Throughput.run ~org:Service.Clustered
        ~locking:Service.Striped cfg
    in
    (r, Obs.Ambient.merged ())
  in
  let r1, m1 = run 1 in
  let r4, m4 = run 4 in
  Alcotest.(check int) "same total ops" r1.Pt_service.Throughput.total_ops
    r4.Pt_service.Throughput.total_ops;
  Alcotest.(check int) "same population" r1.Pt_service.Throughput.population
    r4.Pt_service.Throughput.population;
  Alcotest.(check bool)
    "merged metrics identical for 1 and 4 domains" true
    (Obs.Metrics.equal m1 m4);
  Alcotest.(check bool)
    "lookup traffic was recorded" true
    (Obs.Metrics.value (Obs.Metrics.counter m4 "throughput.ops.lookup") > 0);
  Alcotest.(check bool)
    "structural probe was recorded" true
    (Obs.Hist.count (Obs.Metrics.hist m4 "service.chain_length") > 0);
  Obs.Ambient.reset ()

let suite =
  ( "service",
    [
      Alcotest.test_case "oracle: clustered striped" `Slow
        test_oracle_clustered_striped;
      Alcotest.test_case "oracle: hashed striped" `Slow
        test_oracle_hashed_striped;
      Alcotest.test_case "oracle: clustered global" `Slow
        test_oracle_clustered_global;
      Alcotest.test_case "oracle: hashed global" `Slow
        test_oracle_hashed_global;
      Alcotest.test_case "oracle: clustered seqlock" `Slow
        test_oracle_clustered_seqlock;
      Alcotest.test_case "oracle: hashed seqlock" `Slow
        test_oracle_hashed_seqlock;
      Alcotest.test_case "seqlock reads are lock-free" `Quick
        test_seqlock_lockfree_reads;
      Alcotest.test_case "seqlock limbo lifecycle (clustered)" `Quick
        test_seqlock_limbo_clustered;
      Alcotest.test_case "seqlock limbo lifecycle (hashed)" `Quick
        test_seqlock_limbo_hashed;
      QCheck_alcotest.to_alcotest prop_seqlock_limbo_drains;
      Alcotest.test_case "throughput seqlock deterministic fields" `Quick
        test_throughput_seqlock_deterministic;
      Alcotest.test_case "range ops sectioning" `Quick
        test_range_ops_sectioning;
      Alcotest.test_case "protect_range applies" `Quick
        test_protect_range_applies;
      Alcotest.test_case "protect lock granularity" `Quick
        test_protect_lock_granularity;
      Alcotest.test_case "protect applies under striping" `Quick
        test_protect_applies;
      Alcotest.test_case "throughput deterministic fields" `Quick
        test_throughput_deterministic_fields;
      Alcotest.test_case "throughput organizations agree" `Quick
        test_throughput_orgs_agree;
      Alcotest.test_case "service replay domain invariance" `Slow
        test_service_replay_domain_invariance;
      Alcotest.test_case "service replay drains" `Slow
        test_service_replay_drains;
      Alcotest.test_case "lock stats reset" `Quick test_lock_stats_reset;
      Alcotest.test_case "throughput metrics domain invariance" `Slow
        test_throughput_metrics_domain_invariant;
    ] )
