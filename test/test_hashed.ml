(* Hashed page table and its superpage-storage variants. *)

module H = Baselines.Hashed_pt
module Types = Pt_common.Types

let attr = Pte.Attr.default

let instance ?packed ?mode () =
  Pt_common.Intf.Instance
    ((module H), H.create ~buckets:64 ?packed ?mode ())

let test_basic () =
  let t = H.create () in
  H.insert_base t ~vpn:0x41034L ~ppn:0x99L ~attr;
  (match H.lookup t ~vpn:0x41034L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 0x99L tr.Types.ppn;
      Alcotest.(check int) "one line on a short chain" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found");
  Alcotest.(check int) "24 bytes per PTE" 24 (H.size_bytes t)

let test_packed_size () =
  let t = H.create ~packed:true () in
  for i = 0 to 9 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  (* Section 7: packing tag+next into 8 bytes cuts size by a third *)
  Alcotest.(check int) "16 bytes per PTE" 160 (H.size_bytes t)

let test_per_page_nodes () =
  let t = H.create () in
  for i = 0 to 15 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  (* unlike the clustered table: sixteen pages cost sixteen nodes *)
  Alcotest.(check int) "sixteen nodes" 16 (H.node_count t);
  Alcotest.(check int) "384 bytes" 384 (H.size_bytes t)

let test_chain_cost () =
  let t = H.create ~buckets:1 () in
  for i = 0 to 3 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  (* inserted at head: vpn 3 first, vpn 0 last *)
  let _, w3 = H.lookup t ~vpn:3L in
  let _, w0 = H.lookup t ~vpn:0L in
  Alcotest.(check int) "head is one probe" 1 w3.Types.probes;
  Alcotest.(check int) "tail is four probes" 4 w0.Types.probes;
  Alcotest.(check int) "four lines" 4 (Types.walk_lines w0)

let test_unsuccessful_search_full_chain () =
  let t = H.create ~buckets:1 () in
  for i = 0 to 4 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  let tr, w = H.lookup t ~vpn:100L in
  Alcotest.(check bool) "faults" true (tr = None);
  Alcotest.(check int) "walks the whole chain" 5 w.Types.probes

let test_remove_relinks () =
  let t = H.create ~buckets:1 () in
  for i = 0 to 4 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  H.remove t ~vpn:2L;
  Alcotest.(check bool) "removed" true (fst (H.lookup t ~vpn:2L) = None);
  List.iter
    (fun v ->
      Alcotest.(check bool) "chain intact" true (fst (H.lookup t ~vpn:v) <> None))
    [ 0L; 1L; 3L; 4L ];
  Alcotest.(check int) "node freed" 4 (H.node_count t)

let test_no_superpages_mode_raises () =
  let t = H.create () in
  Alcotest.check_raises "superpage unsupported"
    (Invalid_argument "Hashed_pt: superpages unsupported in this mode")
    (fun () ->
      H.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x40L
        ~attr)

let test_two_tables_superpage () =
  let t = H.create ~mode:(H.Two_tables { coarse_first = false }) () in
  H.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  H.insert_base t ~vpn:0x10L ~ppn:0x1L ~attr;
  (match H.lookup t ~vpn:0x4AL with
  | Some tr, walk ->
      Alcotest.(check int64) "sp offset" 0x10AL tr.Types.ppn;
      (* probing the empty 4KB table first costs an extra line *)
      Alcotest.(check bool) "two probes for sp pages" true
        (Types.walk_lines walk >= 2)
  | None, _ -> Alcotest.fail "superpage page not found");
  match H.lookup t ~vpn:0x10L with
  | Some _, walk ->
      Alcotest.(check int) "base page costs one line" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "base page lost"

let test_two_tables_coarse_first () =
  (* the Section 6.3 reverse order: superpage pages become cheap *)
  let t = H.create ~mode:(H.Two_tables { coarse_first = true }) () in
  H.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  match H.lookup t ~vpn:0x4AL with
  | Some _, walk ->
      Alcotest.(check int) "one line when coarse probed first" 1
        (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let test_two_tables_psb () =
  let t = H.create ~mode:(H.Two_tables { coarse_first = false }) () in
  H.insert_psb t ~vpbn:3L ~vmask:0b101 ~ppn:0x30L ~attr;
  (match H.lookup t ~vpn:0x32L with
  | Some tr, _ ->
      Alcotest.(check int64) "psb page" 0x32L tr.Types.ppn;
      Alcotest.(check bool) "kind" true
        (tr.Types.kind = Types.Partial_subblock 0b101)
  | None, _ -> Alcotest.fail "psb bit 2");
  Alcotest.(check bool) "clear bit faults" true
    (fst (H.lookup t ~vpn:0x31L) = None);
  (* removing one page clears its bit *)
  H.remove t ~vpn:0x32L;
  Alcotest.(check bool) "bit removed" true (fst (H.lookup t ~vpn:0x32L) = None);
  Alcotest.(check bool) "other bit alive" true (fst (H.lookup t ~vpn:0x30L) <> None)

let test_superpage_index_mode () =
  let t = H.create ~mode:H.Superpage_index () in
  H.insert_base t ~vpn:0x41L ~ppn:0x1L ~attr;
  H.insert_superpage t ~vpn:0x50L ~size:Addr.Page_size.kb64 ~ppn:0x200L ~attr;
  (* base and superpage PTEs share buckets (hash on the 64 KB index) *)
  (match H.lookup t ~vpn:0x41L with
  | Some tr, _ -> Alcotest.(check int64) "base" 0x1L tr.Types.ppn
  | None, _ -> Alcotest.fail "base in spindex");
  (match H.lookup t ~vpn:0x5FL with
  | Some tr, _ -> Alcotest.(check int64) "sp" 0x20FL tr.Types.ppn
  | None, _ -> Alcotest.fail "sp in spindex");
  (* base pages of one block chain together: longer chains *)
  let t2 = H.create ~mode:H.Superpage_index ~buckets:4096 () in
  for i = 0 to 15 do
    H.insert_base t2 ~vpn:(Int64.of_int (0x40 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  let _, w = H.lookup t2 ~vpn:0x40L in
  Alcotest.(check int) "sixteen base PTEs on one chain" 16 w.Types.probes

let test_spindex_rejects_large () =
  let t = H.create ~mode:H.Superpage_index () in
  Alcotest.check_raises "larger than the hash block"
    (Invalid_argument
       "Hashed_pt: superpage larger than the hash index block must be \
        handled another way (Section 4.2)") (fun () ->
      H.insert_superpage t ~vpn:0x100L ~size:Addr.Page_size.mb1 ~ppn:0x400L
        ~attr)

let test_lookup_block_sixteen_probes () =
  let t = H.create () in
  for i = 0 to 15 do
    H.insert_base t ~vpn:(Int64.of_int (0x80 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  let found, walk = H.lookup_block t ~vpn:0x85L ~subblock_factor:16 in
  Alcotest.(check int) "all sixteen found" 16 (List.length found);
  (* Section 4.4: sixteen separate hash probes *)
  Alcotest.(check bool) "sixteen probes" true (walk.Types.probes >= 16);
  Alcotest.(check bool) "sixteen lines" true (Types.walk_lines walk >= 16)

let test_lookup_block_covers_via_psb () =
  let t = H.create ~mode:(H.Two_tables { coarse_first = false }) () in
  H.insert_psb t ~vpbn:8L ~vmask:0xFFFF ~ppn:0x80L ~attr;
  let found, walk = H.lookup_block t ~vpn:0x80L ~subblock_factor:16 in
  Alcotest.(check int) "one psb entry covers all" 16 (List.length found);
  (* one fine miss + one coarse hit, not sixteen probes *)
  Alcotest.(check bool) "few lines" true (Types.walk_lines walk <= 3)

let test_attr_range_per_page () =
  let t = H.create () in
  for i = 0 to 31 do
    H.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  let searches =
    H.set_attr_range t
      (Addr.Region.make ~first_vpn:0L ~pages:32)
      ~f:(fun a -> { a with Pte.Attr.writable = false })
  in
  (* Section 3.1: hashed pays one search per base page *)
  Alcotest.(check int) "32 searches for 32 pages" 32 searches;
  match H.lookup t ~vpn:9L with
  | Some tr, _ ->
      Alcotest.(check bool) "updated" false tr.Types.attr.Pte.Attr.writable
  | None, _ -> Alcotest.fail "page lost"

let prop_model_plain =
  Pt_model.model_test ~name:"hashed (plain) agrees with model"
    ~make:(fun () -> instance ())

let prop_model_packed =
  Pt_model.model_test ~name:"hashed (packed) agrees with model"
    ~make:(fun () -> instance ~packed:true ())

let prop_model_spindex =
  Pt_model.model_test ~name:"hashed (superpage-index) agrees with model"
    ~make:(fun () -> instance ~mode:H.Superpage_index ())

let prop_model_two_tables =
  Pt_model.model_test ~name:"hashed (two tables) agrees with model"
    ~make:(fun () -> instance ~mode:(H.Two_tables { coarse_first = false }) ())

let prop_drain =
  Pt_model.drain_test ~name:"hashed drains to empty" ~make:(fun () -> instance ())

let suite =
  ( "hashed",
    [
      Alcotest.test_case "basics" `Quick test_basic;
      Alcotest.test_case "packed size" `Quick test_packed_size;
      Alcotest.test_case "node per page" `Quick test_per_page_nodes;
      Alcotest.test_case "chain cost" `Quick test_chain_cost;
      Alcotest.test_case "unsuccessful search" `Quick
        test_unsuccessful_search_full_chain;
      Alcotest.test_case "remove relinks" `Quick test_remove_relinks;
      Alcotest.test_case "no-superpage mode raises" `Quick
        test_no_superpages_mode_raises;
      Alcotest.test_case "two tables: superpage" `Quick test_two_tables_superpage;
      Alcotest.test_case "two tables: coarse first" `Quick
        test_two_tables_coarse_first;
      Alcotest.test_case "two tables: psb" `Quick test_two_tables_psb;
      Alcotest.test_case "superpage-index mode" `Quick test_superpage_index_mode;
      Alcotest.test_case "spindex rejects large" `Quick test_spindex_rejects_large;
      Alcotest.test_case "block prefetch = 16 probes" `Quick
        test_lookup_block_sixteen_probes;
      Alcotest.test_case "block prefetch via psb" `Quick
        test_lookup_block_covers_via_psb;
      Alcotest.test_case "range op per page" `Quick test_attr_range_per_page;
      QCheck_alcotest.to_alcotest prop_model_plain;
      QCheck_alcotest.to_alcotest prop_model_packed;
      QCheck_alcotest.to_alcotest prop_model_spindex;
      QCheck_alcotest.to_alcotest prop_model_two_tables;
      QCheck_alcotest.to_alcotest prop_drain;
    ] )
