(* The multi-tenant fleet (lib/fleet): batched range submissions vs
   the per-page baseline (qcheck equivalence on both organizations),
   cross-shard ASID placement fsck, budget-driven eviction with
   demand-fault-back, the measured lock amortisation, a concurrent
   4-domain fleet oracle, and domain-count invariance of the driver's
   JSON — the CI gate's acceptance criterion. *)

module Sh = Fleet.Sharded
module FS = Fleet.Fleet_sim
module FR = Dynamics.Fleet_replay
module S = Pt_service.Service

let attr = Pte.Attr.default
let region ~first_vpn ~pages = Addr.Region.make ~first_vpn ~pages

(* --- qcheck: a batched range op is equivalent to its per-page
   sequence, on both organizations --- *)

(* a short deterministic script of region ops derived from one seed *)
let script_of_seed seed ops =
  List.init ops (fun i ->
      let r = Addr.Bits.mix64 (Int64.of_int ((seed * 7_368_787) + i)) in
      let first = Int64.logand r 0x3FFL in
      let pages = 1 + Int64.to_int (Int64.logand (Int64.shift_right_logical r 16) 0x3FL) in
      let kind = Int64.to_int (Int64.logand (Int64.shift_right_logical r 32) 3L) in
      (kind, region ~first_vpn:first ~pages))

let prop_batched_equals_paged =
  QCheck.Test.make ~count:40 ~name:"batched range ops = per-page sequence"
    QCheck.(pair (int_bound 1_000_000) (int_range 5 30))
    (fun (seed, ops) ->
      List.for_all
        (fun org ->
          let batched = S.create ~buckets:64 ~org ~locking:S.Striped () in
          let paged = S.create ~buckets:64 ~org ~locking:S.Striped () in
          let ppn_of vpn = Int64.add vpn 0x5_0000L in
          List.iter
            (fun (kind, r) ->
              match kind with
              | 0 | 3 ->
                  ignore (S.map_range batched r ~ppn_of ~attr);
                  Addr.Region.iter_vpns r (fun vpn ->
                      S.insert paged ~vpn ~ppn:(ppn_of vpn) ~attr)
              | 1 ->
                  ignore (S.unmap_range batched r);
                  Addr.Region.iter_vpns r (fun vpn -> S.remove paged ~vpn)
              | _ ->
                  ignore (S.protect_range batched r ~writable:false);
                  Addr.Region.iter_vpns r (fun vpn ->
                      ignore
                        (S.protect paged
                           (region ~first_vpn:vpn ~pages:1)
                           ~writable:false)))
            (script_of_seed seed ops);
          S.quiesce batched;
          S.quiesce paged;
          if S.population batched <> S.population paged then
            QCheck.Test.fail_reportf "%s: population %d <> %d" (S.org_name org)
              (S.population batched) (S.population paged);
          for v = 0 to 0x43F do
            let vpn = Int64.of_int v in
            let a = S.find batched ~vpn and b = S.find paged ~vpn in
            match (a, b) with
            | None, None -> ()
            | Some ta, Some tb ->
                if ta.Pt_common.Types.ppn <> tb.Pt_common.Types.ppn then
                  QCheck.Test.fail_reportf "%s: vpn 0x%Lx ppn differs"
                    (S.org_name org) vpn;
                if ta.Pt_common.Types.attr <> tb.Pt_common.Types.attr then
                  QCheck.Test.fail_reportf "%s: vpn 0x%Lx attr differs"
                    (S.org_name org) vpn
            | _ ->
                QCheck.Test.fail_reportf "%s: vpn 0x%Lx presence differs"
                  (S.org_name org) vpn
          done;
          Fsck.clean (S.fsck batched) && Fsck.clean (S.fsck paged))
        [ S.Clustered; S.Hashed ])

(* --- the sharded fleet: placement, isolation, accounting --- *)

let make_fleet ?(shards = 3) ?(tenants = 5) ?(mode = Sh.Batched) () =
  Sh.create ~buckets:128 ~org:S.Clustered ~locking:S.Seqlock ~shards ~tenants
    ~mode ()

let test_fleet_placement_and_isolation () =
  let f = make_fleet () in
  (* same tenant-local keys in every tenant: isolation means they
     never collide *)
  for asid = 1 to Sh.tenant_count f do
    ignore (Sh.map f ~asid (region ~first_vpn:0x10L ~pages:8))
  done;
  Alcotest.(check int) "population = tenants x pages" 40 (Sh.population f);
  for asid = 1 to Sh.tenant_count f do
    Alcotest.(check int)
      (Printf.sprintf "tenant %d resident" asid)
      8 (Sh.resident f ~asid);
    Alcotest.(check bool) "mem sees the local key" true (Sh.mem f ~asid 0x12L);
    match Sh.find f ~asid 0x12L with
    | Some tr ->
        Alcotest.(check int64)
          "translation untagged back to tenant-local" 0x12L
          tr.Pt_common.Types.vpn
    | None -> Alcotest.fail "find missed a mapped key"
  done;
  ignore (Sh.unmap f ~asid:2 (region ~first_vpn:0x10L ~pages:8));
  Alcotest.(check bool) "tenant 2 unmapped" false (Sh.mem f ~asid:2 0x12L);
  Alcotest.(check bool) "tenant 3 untouched" true (Sh.mem f ~asid:3 0x12L);
  Sh.quiesce f;
  Alcotest.(check bool) "fleet fsck clean" true (Sh.fsck_clean (Sh.fsck f))

let test_fleet_batched_fewer_sections () =
  (* the acceptance criterion: on a clustered fleet the batched path
     takes measurably fewer write sections per page than paged *)
  let r = region ~first_vpn:0x40L ~pages:64 in
  let batched = make_fleet ~mode:Sh.Batched () in
  let paged = make_fleet ~mode:Sh.Paged () in
  let sb = Sh.map batched ~asid:1 r in
  let sp = Sh.map paged ~asid:1 r in
  Alcotest.(check int) "paged: one section per page" 64 sp;
  Alcotest.(check bool)
    (Printf.sprintf "batched takes fewer sections (%d < %d)" sb sp)
    true (sb < sp);
  Alcotest.(check bool) "batched amortises at least 4x" true (sb * 4 <= sp);
  Alcotest.(check int)
    "same pages mapped either way" (Sh.population batched)
    (Sh.population paged)

let test_fleet_eviction_and_refault () =
  let f = make_fleet ~shards:2 ~tenants:3 () in
  ignore (Sh.map f ~asid:1 (region ~first_vpn:0x100L ~pages:50));
  ignore (Sh.map f ~asid:2 (region ~first_vpn:0x100L ~pages:30));
  ignore (Sh.map f ~asid:3 (region ~first_vpn:0x100L ~pages:20));
  Alcotest.(check int) "resident before pressure" 100 (Sh.total_resident f);
  (* activity: tenant 2 coldest, then 3, then 1 *)
  let activity = function 1 -> 90 | 2 -> 5 | _ -> 40 in
  let evicted, pages = Sh.enforce_budget f ~budget:60 ~activity in
  Alcotest.(check int) "coldest-first: 2 then 3 evicted" 2 evicted;
  Alcotest.(check int) "their pages freed" 50 pages;
  Alcotest.(check int) "within budget" 50 (Sh.total_resident f);
  Alcotest.(check bool) "tenant 2 gone" false (Sh.mem f ~asid:2 0x100L);
  Alcotest.(check bool) "tenant 1 survived" true (Sh.mem f ~asid:1 0x100L);
  Alcotest.(check int) "eviction counted" 1 (Sh.evictions f ~asid:2);
  (* demand-fault back in: the tenant repopulates transparently *)
  ignore (Sh.map f ~asid:2 (region ~first_vpn:0x100L ~pages:30));
  Alcotest.(check bool) "tenant 2 refaulted" true (Sh.mem f ~asid:2 0x100L);
  Alcotest.(check int) "books track refault" 80 (Sh.total_resident f);
  (* a generous budget is a no-op *)
  Alcotest.(check bool)
    "no eviction under budget" true
    (Sh.enforce_budget f ~budget:1_000 ~activity = (0, 0));
  Sh.quiesce f;
  Alcotest.(check int) "limbo drained" 0 (Sh.limbo_nodes f);
  Alcotest.(check bool) "fsck clean after pressure" true
    (Sh.fsck_clean (Sh.fsck f))

(* --- cross-shard ASID fsck: overlap and misplacement --- *)

let shard_tables services = Array.map S.fsck_table services

let test_check_shards_findings () =
  let mk () = S.create ~buckets:32 ~org:S.Hashed ~locking:S.Striped () in
  let tag ~asid vpn = Int64.logor (Int64.shift_left (Int64.of_int asid) 50) vpn in
  let s0 = mk () and s1 = mk () in
  S.insert s0 ~vpn:(tag ~asid:2 0x10L) ~ppn:0x1L ~attr;
  S.insert s1 ~vpn:(tag ~asid:3 0x10L) ~ppn:0x2L ~attr;
  let clean = Fsck.check_shards (shard_tables [| s0; s1 |]) in
  Alcotest.(check bool) "disjoint fleet is clean" true (Fsck.clean clean);
  (* the same ASID live in two shards: overlap *)
  S.insert s1 ~vpn:(tag ~asid:2 0x20L) ~ppn:0x3L ~attr;
  let report = Fsck.check_shards (shard_tables [| s0; s1 |]) in
  Alcotest.(check bool) "overlap caught" false (Fsck.clean report);
  Alcotest.(check bool) "coded asid_overlap" true
    (List.exists
       (fun f -> f.Fsck.code = "asid_overlap")
       report.Fsck.findings);
  (* placement: asid 3 belongs on shard 3 mod 2 = 1, asid 2 on 0 *)
  let placed =
    Fsck.check_shards ~expected_shard:(fun asid -> asid mod 2)
      (shard_tables [| s0; s1 |])
  in
  Alcotest.(check bool) "misplacement caught" true
    (List.exists
       (fun f -> f.Fsck.code = "asid_misplaced")
       placed.Fsck.findings);
  Alcotest.check_raises "empty fleet rejected"
    (Invalid_argument "Fsck.check_shards: need at least one shard") (fun () ->
      ignore (Fsck.check_shards [||]))

(* --- churn interpretation plumbing --- *)

let test_fleet_replay_local_keys () =
  Alcotest.(check int64)
    "pid folds into bits 32..43" 0x2_0000_0123L
    (FR.local_key ~pid:2 ~vpn:0x123L);
  let mapped = Hashtbl.create 64 in
  let sections = ref 0 in
  let ops =
    {
      FR.map =
        (fun r ->
          incr sections;
          Addr.Region.iter_vpns r (fun v -> Hashtbl.replace mapped v ());
          1);
      unmap =
        (fun r ->
          Addr.Region.iter_vpns r (fun v -> Hashtbl.remove mapped v);
          1);
      protect = (fun _ ~writable:_ -> 1);
      touch = (fun v -> Hashtbl.mem mapped v);
    }
  in
  let spec =
    { Dynamics.Churn.default with Dynamics.Churn.ops = 400; drain = false }
  in
  let trace = Dynamics.Churn.generate ~spec ~seed:7L () in
  let t = FR.create ops trace in
  (* resumable stepping covers the whole trace exactly once *)
  let consumed = ref 0 in
  while not (FR.finished t) do
    consumed := !consumed + FR.step t ~max_events:13
  done;
  Alcotest.(check int) "every event consumed" (FR.length t) !consumed;
  Alcotest.(check int) "step past the end is 0" 0 (FR.step t ~max_events:5);
  let tally = FR.tally t in
  Alcotest.(check int) "tally counts events" (FR.length t) tally.FR.events;
  Alcotest.(check bool) "ranges were submitted" true (tally.FR.range_pages > 0);
  Alcotest.(check bool) "touches resolved" true (tally.FR.touches > 0);
  Alcotest.(check int)
    "every touch either hit or demand-faulted" tally.FR.touches
    (tally.FR.touch_hits + tally.FR.touch_faults);
  Alcotest.(check int)
    "books balance" (Hashtbl.length mapped)
    (tally.FR.pages_mapped - tally.FR.pages_unmapped)

(* --- the driver: 4-domain oracle and JSON invariance --- *)

let tiny =
  {
    FS.quick_config with
    FS.tenants = 6;
    shards = 2;
    streams = 4;
    ops_per_tenant = 500;
    frame_budget = 150;
  }

let strip_timing outcome =
  List.map (fun row -> FS.row_to_json ~timing:false row) outcome.FS.rows

let test_fleet_sim_domain_invariance () =
  let run domains = FS.run { tiny with FS.domains } in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check bool) "serial all clean" true (FS.all_clean serial);
  Alcotest.(check bool) "4-domain oracle all clean" true
    (FS.all_clean parallel);
  Alcotest.(check (list string))
    "deterministic rows identical for 1 and 4 domains" (strip_timing serial)
    (strip_timing parallel);
  Alcotest.(check string)
    "JSON byte-identical (the CI gate)"
    (FS.outcome_to_json { tiny with FS.domains = 1 } serial)
    (FS.outcome_to_json { tiny with FS.domains = 4 } parallel)

let test_fleet_sim_pressure_and_amortisation () =
  let outcome = FS.run { tiny with FS.orgs = [ S.Clustered ] } in
  match outcome.FS.rows with
  | [ batched; paged ] ->
      Alcotest.(check bool) "rows fsck clean" true (FS.all_clean outcome);
      Alcotest.(check bool)
        "budget pressure evicted someone" true
        (batched.FS.f_evictions > 0 && batched.FS.f_evicted_pages > 0);
      Alcotest.(check bool)
        "eviction forced shootdowns" true (batched.FS.f_shootdowns > 0);
      Alcotest.(check bool)
        "evicted tenants demand-faulted back" true
        (batched.FS.f_touch_faults > 0);
      Alcotest.(check int)
        "paged takes one section per page" batched.FS.f_range_pages
        paged.FS.f_range_sections;
      Alcotest.(check bool)
        (Printf.sprintf "batched amortises locks (%.4f < %.4f)"
           (FS.locks_per_page batched) (FS.locks_per_page paged))
        true
        (FS.locks_per_page batched < FS.locks_per_page paged /. 4.0);
      Alcotest.(check bool)
        "tagged TLB retains hits across switches" true
        (FS.retained_hits batched > 0);
      Alcotest.(check int)
        "limbo drained at quiesce" 0 batched.FS.f_limbo
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let suite =
  ( "fleet",
    [
      QCheck_alcotest.to_alcotest prop_batched_equals_paged;
      Alcotest.test_case "placement and isolation" `Quick
        test_fleet_placement_and_isolation;
      Alcotest.test_case "batched takes fewer sections" `Quick
        test_fleet_batched_fewer_sections;
      Alcotest.test_case "eviction and demand-fault-back" `Quick
        test_fleet_eviction_and_refault;
      Alcotest.test_case "cross-shard asid fsck" `Quick
        test_check_shards_findings;
      Alcotest.test_case "fleet replay local keys" `Quick
        test_fleet_replay_local_keys;
      Alcotest.test_case "fleet driver domain-invariant" `Slow
        test_fleet_sim_domain_invariance;
      Alcotest.test_case "pressure and lock amortisation" `Slow
        test_fleet_sim_pressure_and_amortisation;
    ] )
