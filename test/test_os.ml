(* The OS layer: address spaces, page-size policies, miss handler. *)

module A = Os_policy.Address_space
module MH = Os_policy.Miss_handler
module Intf = Pt_common.Intf
module Types = Pt_common.Types

let attr = Pte.Attr.default

let clustered () =
  Intf.Instance
    ( (module Clustered_pt.Table),
      Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:256 ()) )

let hashed () =
  Intf.Instance ((module Baselines.Hashed_pt), Baselines.Hashed_pt.create ())

let region ~first ~pages = Addr.Region.make ~first_vpn:first ~pages

let test_map_translate () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:1024 () in
  A.map_region a (region ~first:0x100L ~pages:20) attr;
  Alcotest.(check int) "twenty pages mapped" 20 (A.mapped_pages a);
  (* OS bookkeeping and page table agree *)
  for i = 0 to 19 do
    let vpn = Int64.add 0x100L (Int64.of_int i) in
    let os_ppn = Option.get (A.translate a ~vpn) in
    match Intf.lookup pt ~vpn with
    | Some tr, _ -> Alcotest.(check int64) "pt agrees" os_ppn tr.Types.ppn
    | None, _ -> Alcotest.fail "page table missing a mapped page"
  done

let test_segfault_and_demand () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.declare_region a (region ~first:0x10L ~pages:4) attr;
  Alcotest.(check bool) "outside faults" true (A.fault a ~vpn:0x50L = `Segfault);
  (match A.fault a ~vpn:0x11L with
  | `Mapped _ -> ()
  | _ -> Alcotest.fail "demand fault should map");
  match A.fault a ~vpn:0x11L with
  | `Already_mapped _ -> ()
  | _ -> Alcotest.fail "second fault is already-mapped"

let test_overlap_rejected () =
  let a = A.create ~pt:(clustered ()) ~total_pages:256 () in
  A.declare_region a (region ~first:0x10L ~pages:16) attr;
  Alcotest.check_raises "overlap"
    (Invalid_argument "Address_space.declare_region: overlapping area")
    (fun () -> A.declare_region a (region ~first:0x18L ~pages:4) attr)

let test_unmap_frees () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.map_region a (region ~first:0x20L ~pages:16) attr;
  A.unmap_region a (region ~first:0x20L ~pages:16);
  Alcotest.(check int) "nothing mapped" 0 (A.mapped_pages a);
  Alcotest.(check int) "page table empty" 0 (Intf.population pt);
  (* frames actually return: we can map 16 pages repeatedly in a
     16-block physical memory *)
  for round = 1 to 8 do
    let first = Int64.of_int (round * 0x100) in
    A.map_region a (region ~first ~pages:16) attr;
    A.unmap_region a (region ~first ~pages:16)
  done;
  Alcotest.(check int) "no leak" 0 (A.mapped_pages a)

let test_superpage_promotion_policy () =
  let pt = clustered () in
  let a =
    A.create ~pt ~total_pages:1024 ~policy:A.Superpage_promotion ()
  in
  A.map_region a (region ~first:0x40L ~pages:16) attr;
  Alcotest.(check int) "one promotion" 1 (A.promotions a);
  (* the block now costs a 24-byte node instead of 144 *)
  Alcotest.(check int) "table shrank to one superpage node" 24
    (Intf.size_bytes pt);
  match Intf.lookup pt ~vpn:0x4AL with
  | Some tr, _ ->
      Alcotest.(check bool) "superpage translation" true
        (tr.Types.kind = Types.Superpage Addr.Page_size.kb64)
  | None, _ -> Alcotest.fail "promoted mapping lost"

let test_psb_policy () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:1024 ~policy:A.Partial_subblock () in
  (* map half a block: properly placed thanks to reservation *)
  A.map_region a (region ~first:0x40L ~pages:8) attr;
  Alcotest.(check int) "rides one psb node" 24 (Intf.size_bytes pt);
  match Intf.lookup pt ~vpn:0x44L with
  | Some tr, _ ->
      Alcotest.(check bool) "psb translation" true
        (match tr.Types.kind with Types.Partial_subblock _ -> true | _ -> false)
  | None, _ -> Alcotest.fail "psb mapping lost"

let test_protect_cost_comparison () =
  (* Section 3.1's claim, measured: a range op searches once per block
     in a clustered table, once per page in a hashed table *)
  let run pt =
    let a = A.create ~pt ~total_pages:1024 () in
    A.map_region a (region ~first:0L ~pages:64) attr;
    A.protect_region a (region ~first:0L ~pages:64) ~f:(fun at ->
        { at with Pte.Attr.writable = false })
  in
  Alcotest.(check int) "clustered: 4 searches" 4 (run (clustered ()));
  Alcotest.(check int) "hashed: 64 searches" 64 (run (hashed ()))

let test_protect_applies_to_future_faults () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.declare_region a (region ~first:0x10L ~pages:8) attr;
  ignore (A.fault a ~vpn:0x10L);
  ignore
    (A.protect_region a (region ~first:0x10L ~pages:8) ~f:(fun at ->
         { at with Pte.Attr.writable = false }));
  ignore (A.fault a ~vpn:0x11L);
  match Intf.lookup pt ~vpn:0x11L with
  | Some tr, _ ->
      Alcotest.(check bool) "late fault sees new attr" false
        tr.Types.attr.Pte.Attr.writable
  | None, _ -> Alcotest.fail "unmapped"

let test_oom () =
  let a = A.create ~pt:(clustered ()) ~total_pages:16 () in
  A.declare_region a (region ~first:0L ~pages:64) attr;
  let results = List.init 64 (fun i -> A.fault a ~vpn:(Int64.of_int i)) in
  let mapped =
    List.length (List.filter (function `Mapped _ -> true | _ -> false) results)
  in
  let oom =
    List.length (List.filter (function `Oom -> true | _ -> false) results)
  in
  Alcotest.(check int) "sixteen frames handed out" 16 mapped;
  Alcotest.(check int) "the rest OOM" 48 oom

(* --- miss handler --- *)

let test_miss_handler_flow () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.declare_region a (region ~first:0x10L ~pages:16) attr;
  let h =
    MH.create ~tlb:(Tlb.Intf.fa ~entries:8 ()) ~pt ~aspace:a ()
  in
  Alcotest.(check bool) "first touch demand-faults" true
    (MH.access h ~vpn:0x10L = `Page_fault_filled);
  Alcotest.(check bool) "then hits" true (MH.access h ~vpn:0x10L = `Tlb_hit);
  Alcotest.(check bool) "outside faults hard" true (MH.access h ~vpn:0x90L = `Fault);
  Alcotest.(check int) "one page fault" 1 (MH.page_faults h);
  Alcotest.(check bool) "walk lines recorded" true (MH.walks h > 0)

let test_miss_handler_prefetch () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.map_region a (region ~first:0x40L ~pages:16) attr;
  let h =
    MH.create
      ~tlb:(Tlb.Intf.csb ~entries:8 ~subblock_factor:16 ())
      ~pt ~prefetch:true ()
  in
  ignore (MH.access h ~vpn:0x40L);
  (* the block fill covered all sixteen pages *)
  for i = 1 to 15 do
    Alcotest.(check bool) "prefetched page hits" true
      (MH.access h ~vpn:(Int64.add 0x40L (Int64.of_int i)) = `Tlb_hit)
  done;
  Alcotest.(check int) "exactly one miss" 1 (MH.tlb_misses h)

let test_miss_handler_metric () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:1024 () in
  A.map_region a (region ~first:0L ~pages:512) attr;
  let h = MH.create ~tlb:(Tlb.Intf.fa ~entries:16 ()) ~pt () in
  for i = 0 to 511 do
    ignore (MH.access h ~vpn:(Int64.of_int i))
  done;
  (* a lightly loaded clustered table: about one line per miss *)
  Alcotest.(check bool) "metric near 1" true
    (MH.mean_lines_per_miss h >= 1.0 && MH.mean_lines_per_miss h < 1.3)

let test_allocator_stats_surface () =
  let a = A.create ~pt:(clustered ()) ~total_pages:1024 () in
  A.map_region a (region ~first:0x40L ~pages:32) attr;
  let stats = A.allocator_stats a in
  Alcotest.(check int) "two reservations for two blocks" 2
    stats.Mem.Phys_alloc.reservations_made;
  Alcotest.(check int) "all pages placed" 32 (A.properly_placed_pages a)

let suite =
  ( "os-policy",
    [
      Alcotest.test_case "map & translate" `Quick test_map_translate;
      Alcotest.test_case "segfault & demand" `Quick test_segfault_and_demand;
      Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
      Alcotest.test_case "unmap frees frames" `Quick test_unmap_frees;
      Alcotest.test_case "superpage promotion" `Quick
        test_superpage_promotion_policy;
      Alcotest.test_case "partial-subblock policy" `Quick test_psb_policy;
      Alcotest.test_case "protect cost (Section 3.1)" `Quick
        test_protect_cost_comparison;
      Alcotest.test_case "protect affects future faults" `Quick
        test_protect_applies_to_future_faults;
      Alcotest.test_case "out of memory" `Quick test_oom;
      Alcotest.test_case "miss handler flow" `Quick test_miss_handler_flow;
      Alcotest.test_case "miss handler prefetch" `Quick test_miss_handler_prefetch;
      Alcotest.test_case "miss handler metric" `Quick test_miss_handler_metric;
      Alcotest.test_case "allocator stats" `Quick test_allocator_stats_surface;
    ] )

(* --- the multiprogrammed system --- *)

module Sys_ = Os_policy.System

let make_clustered () = clustered ()

let test_system_isolation () =
  let s =
    Sys_.create ~make_pt:make_clustered ~total_pages:1024
      ~names:[ "a"; "b" ] ()
  in
  (* both processes map the SAME virtual page to different frames *)
  Sys_.mmap s ~pid:0 (region ~first:0x10L ~pages:4) attr;
  Sys_.mmap s ~pid:1 (region ~first:0x10L ~pages:4) attr;
  Sys_.switch_to s ~pid:0;
  ignore (Sys_.access s ~vpn:0x10L);
  Sys_.switch_to s ~pid:1;
  ignore (Sys_.access s ~vpn:0x10L);
  let ppn pid =
    Option.get (A.translate (Sys_.aspace s ~pid) ~vpn:0x10L)
  in
  Alcotest.(check bool) "separate frames" true (not (Int64.equal (ppn 0) (ppn 1)));
  Alcotest.(check int) "two faults" 2 (Sys_.page_faults s);
  Alcotest.(check int) "one switch" 1 (Sys_.switches s)

let test_system_flush_vs_asid () =
  let run switch_policy =
    let s =
      Sys_.create ~switch_policy ~make_pt:make_clustered ~total_pages:4096
        ~names:[ "a"; "b" ] ()
    in
    Sys_.mmap s ~pid:0 (region ~first:0x100L ~pages:16) attr;
    Sys_.mmap s ~pid:1 (region ~first:0x100L ~pages:16) attr;
    (* warm both, then ping-pong: tags keep both working sets live *)
    for _ = 1 to 20 do
      Sys_.switch_to s ~pid:0;
      for i = 0 to 15 do
        ignore (Sys_.access s ~vpn:(Int64.add 0x100L (Int64.of_int i)))
      done;
      Sys_.switch_to s ~pid:1;
      for i = 0 to 15 do
        ignore (Sys_.access s ~vpn:(Int64.add 0x100L (Int64.of_int i)))
      done
    done;
    Sys_.tlb_misses s
  in
  let flush = run Sys_.Flush and asid = run Sys_.Asid in
  Alcotest.(check bool) "ASIDs avoid the flush misses" true (asid < flush / 4);
  (* both working sets fit a 64-entry TLB: tagged misses = first touches *)
  Alcotest.(check int) "tagged misses = compulsory" 32 asid

let test_system_shared_memory_pressure () =
  (* one 64-frame memory, two processes wanting 48 pages each: the
     second process's demand preempts the first's reservations *)
  let s =
    Sys_.create ~make_pt:make_clustered ~total_pages:64 ~names:[ "a"; "b" ] ()
  in
  Sys_.mmap s ~pid:0 (region ~first:0x100L ~pages:48) attr;
  Sys_.mmap s ~pid:1 (region ~first:0x100L ~pages:48) attr;
  Sys_.switch_to s ~pid:0;
  for i = 0 to 47 do
    ignore (Sys_.access s ~vpn:(Int64.add 0x100L (Int64.of_int i)))
  done;
  Sys_.switch_to s ~pid:1;
  let got = ref 0 and oom = ref 0 in
  for i = 0 to 47 do
    match Sys_.access s ~vpn:(Int64.add 0x100L (Int64.of_int i)) with
    | `Page_fault_filled -> incr got
    | `Fault -> incr oom
    | `Tlb_hit | `Filled -> ()
  done;
  Alcotest.(check int) "16 frames left for process b" 16 !got;
  Alcotest.(check int) "the rest OOM" 32 !oom;
  Alcotest.(check int) "all frames in use" 0 (Sys_.free_frames s);
  Alcotest.(check int) "64 pages mapped across the system" 64
    (Sys_.total_mapped_pages s)

let test_system_trace_replay () =
  let spec = Workload.Table1.compress in
  let snap = Workload.Snapshot.generate spec ~seed:7L in
  let trace = Workload.Trace.generate spec snap ~seed:8L ~length:5000 in
  let s =
    Sys_.create ~make_pt:make_clustered ~total_pages:16384
      ~names:
        (List.map
           (fun p -> p.Workload.Snapshot.pname)
           snap.Workload.Snapshot.procs)
      ()
  in
  (* declare each process's snapshot segments *)
  List.iteri
    (fun pid p ->
      List.iter
        (fun (seg : Workload.Snapshot.segment) ->
          Sys_.mmap s ~pid
            (Addr.Region.make ~first_vpn:seg.Workload.Snapshot.first_vpn
               ~pages:seg.Workload.Snapshot.pages)
            attr)
        p.Workload.Snapshot.segments)
    snap.Workload.Snapshot.procs;
  Sys_.run_trace s trace;
  Alcotest.(check bool) "demand paging happened" true (Sys_.page_faults s > 0);
  Alcotest.(check bool) "misses recorded" true (Sys_.tlb_misses s > 0);
  Alcotest.(check bool) "metric sane" true
    (Sys_.mean_lines_per_miss s >= 1.0 && Sys_.mean_lines_per_miss s < 2.5);
  Alcotest.(check bool) "context switches happened" true (Sys_.switches s > 2)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "system: isolation" `Quick test_system_isolation;
        Alcotest.test_case "system: flush vs asid" `Quick
          test_system_flush_vs_asid;
        Alcotest.test_case "system: memory pressure" `Quick
          test_system_shared_memory_pressure;
        Alcotest.test_case "system: trace replay" `Quick test_system_trace_replay;
      ] )

let test_ref_mod_bits () =
  let pt = clustered () in
  let a = A.create ~pt ~total_pages:256 () in
  A.map_region a (region ~first:0x10L ~pages:4) attr;
  let h = MH.create ~tlb:(Tlb.Intf.fa ~entries:8 ()) ~pt () in
  let bits vpn =
    match Intf.lookup pt ~vpn with
    | Some tr, _ ->
        (tr.Types.attr.Pte.Attr.referenced, tr.Types.attr.Pte.Attr.modified)
    | None, _ -> Alcotest.fail "unmapped"
  in
  Alcotest.(check (pair bool bool)) "clean initially" (false, false) (bits 0x10L);
  ignore (MH.access h ~vpn:0x10L);
  Alcotest.(check (pair bool bool)) "referenced after read miss" (true, false)
    (bits 0x10L);
  ignore (MH.access ~write:true h ~vpn:0x11L);
  Alcotest.(check (pair bool bool)) "ref+mod after write miss" (true, true)
    (bits 0x11L);
  (* a TLB hit does not re-walk: bits already set stay set *)
  ignore (MH.access h ~vpn:0x11L);
  Alcotest.(check (pair bool bool)) "stable on hits" (true, true) (bits 0x11L)

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "ref/mod bits (3.1)" `Quick test_ref_mod_bits ] )

let test_system_superpage_end_to_end () =
  (* policy + reservation + promotion + superpage TLB, end to end: a
     sweep over a promoted region misses once per 64 KB, not per 4 KB *)
  let pt = clustered () in
  let a =
    A.create ~pt ~total_pages:4096 ~policy:A.Superpage_promotion ()
  in
  A.map_region a (region ~first:0x100L ~pages:128) attr;
  Alcotest.(check int) "eight blocks promoted" 8 (A.promotions a);
  let h = MH.create ~tlb:(Tlb.Intf.superpage ~entries:64 ()) ~pt () in
  for i = 0 to 127 do
    ignore (MH.access h ~vpn:(Int64.add 0x100L (Int64.of_int i)))
  done;
  Alcotest.(check int) "one miss per superpage" 8 (MH.tlb_misses h);
  Alcotest.(check bool) "each at about a line" true
    (MH.mean_lines_per_miss h < 1.5)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "system superpage end-to-end" `Quick
          test_system_superpage_end_to_end;
      ] )
