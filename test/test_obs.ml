(* The telemetry layer (lib/obs): log2 histograms, the metrics
   registry, per-domain ambient shards, the ring-buffer tracer, and
   structural probes.  The load-bearing property throughout is that
   merging per-domain observations is a commutative, associative sum —
   that is what makes the merged telemetry of a parallel run equal to
   the serial run's. *)

module H = Obs.Hist
module M = Obs.Metrics

let hist_of values =
  let h = H.create () in
  List.iter (H.observe h) values;
  h

(* --- histogram bucketing and exact moments --- *)

let test_hist_buckets () =
  let h = hist_of [ 0; 1; 2; 3; 4; 7; 8; 1000 ] in
  Alcotest.(check int) "count" 8 (H.count h);
  Alcotest.(check int) "sum" 1025 (H.sum h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  Alcotest.(check (float 1e-9)) "mean is exact" (1025.0 /. 8.0) (H.mean h);
  let buckets = ref [] in
  H.iter_nonzero h (fun k c -> buckets := (k, c) :: !buckets);
  (* 0 | 1 | 2,3 | 4..7 | 8..15 | 512..1023 *)
  Alcotest.(check (list (pair int int)))
    "log2 bucket placement"
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 1); (10, 1) ]
    (List.rev !buckets);
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d bounds ordered" k)
        true
        (H.bucket_lo k <= H.bucket_hi k))
    !buckets

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (H.mean h);
  Alcotest.(check bool) "equal to fresh" true (H.equal h (H.create ()));
  H.observe h 5;
  H.clear h;
  Alcotest.(check bool) "cleared = fresh" true (H.equal h (H.create ()))

(* quantiles resolve to the upper bound of the bucket holding the
   rank, clamped to the observed maximum *)
let test_hist_quantile () =
  let h = hist_of [ 0; 1; 2; 3; 4; 7; 8; 1000 ] in
  Alcotest.(check int) "p12.5 lands in bucket {0}" 0 (H.quantile h ~q:0.125);
  Alcotest.(check int) "median = hi of bucket {2,3}" 3 (H.quantile h ~q:0.5);
  Alcotest.(check int) "p100 clamps to observed max" 1000 (H.quantile h ~q:1.0);
  Alcotest.(check int)
    "p99 of 8 samples is the max rank" 1000 (H.quantile h ~q:0.99);
  let one = hist_of [ 5 ] in
  Alcotest.(check int)
    "singleton clamps below bucket hi" 5 (H.quantile one ~q:0.99);
  Alcotest.(check int) "empty histogram" 0 (H.quantile (H.create ()) ~q:0.99);
  List.iter
    (fun q ->
      Alcotest.check_raises
        (Printf.sprintf "q = %g rejected" q)
        (Invalid_argument "Hist.quantile: q must be in (0, 1]")
        (fun () -> ignore (H.quantile h ~q)))
    [ 0.0; -0.5; 1.5 ]

(* --- merge is a commutative, associative sum (satellite 3) --- *)

let small_lists =
  QCheck.(triple (list small_nat) (list small_nat) (list small_nat))

let prop_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:200 small_lists
    (fun (a, b, _) ->
      let ab = hist_of a and ba = hist_of b in
      H.merge_into ~src:(hist_of b) ~dst:ab;
      H.merge_into ~src:(hist_of a) ~dst:ba;
      H.equal ab ba)

let prop_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:200 small_lists
    (fun (a, b, c) ->
      (* (a + b) + c *)
      let left = hist_of a in
      H.merge_into ~src:(hist_of b) ~dst:left;
      H.merge_into ~src:(hist_of c) ~dst:left;
      (* a + (b + c) *)
      let bc = hist_of b in
      H.merge_into ~src:(hist_of c) ~dst:bc;
      let right = hist_of a in
      H.merge_into ~src:bc ~dst:right;
      H.equal left right)

let prop_shard_merge_equals_serial =
  QCheck.Test.make
    ~name:"sharded observation + merge = single-domain histogram" ~count:200
    QCheck.(pair (list small_nat) (int_range 1 8))
    (fun (values, shards) ->
      (* deal the observation stream round-robin over [shards] hists,
         exactly as streams are dealt over domains, then merge *)
      let parts = Array.init shards (fun _ -> H.create ()) in
      List.iteri (fun i v -> H.observe parts.(i mod shards) v) values;
      let merged = H.create () in
      Array.iter (fun p -> H.merge_into ~src:p ~dst:merged) parts;
      H.equal merged (hist_of values))

(* --- quantile interpolation properties (PR 9 satellite) --- *)

let nonempty_values = QCheck.(list_of_size Gen.(int_range 1 40) small_nat)

let qs = QCheck.(map (fun n -> float_of_int n /. 100.0) (int_range 1 100))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:300
    QCheck.(triple nonempty_values qs qs)
    (fun (values, qa, qb) ->
      let h = hist_of values in
      let lo = min qa qb and hi = max qa qb in
      H.quantile h ~q:lo <= H.quantile h ~q:hi)

let prop_quantile_bounded =
  QCheck.Test.make ~name:"quantile stays within [min, max]" ~count:300
    QCheck.(pair nonempty_values qs)
    (fun (values, q) ->
      let h = hist_of values in
      let v = H.quantile h ~q in
      H.min_value h <= v && v <= H.max_value h)

let prop_quantile_exact_single =
  QCheck.Test.make ~name:"quantile is exact on a single distinct value"
    ~count:300
    QCheck.(triple small_nat (int_range 1 50) qs)
    (fun (v, n, q) ->
      let h = hist_of (List.init n (fun _ -> v)) in
      H.quantile h ~q = v)

(* --- metrics registry --- *)

let test_metrics_equal_ignores_zero () =
  let a = M.create () and b = M.create () in
  ignore (M.counter a "touched.but.zero");
  ignore (M.hist a "empty.hist");
  Alcotest.(check bool)
    "zero counters and empty hists don't break equality" true (M.equal a b);
  M.incr (M.counter a "x");
  Alcotest.(check bool) "nonzero counter breaks it" false (M.equal a b)

let test_metrics_merge_and_json () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "b.counter") 2;
  M.incr (M.counter a "a.counter");
  H.observe (M.hist a "h") 3;
  M.add (M.counter b "b.counter") 5;
  H.observe (M.hist b "h") 3;
  M.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged counter" 7 (M.value (M.counter a "b.counter"));
  Alcotest.(check int) "merged hist" 2 (H.count (M.hist a "h"));
  let json = M.to_json a in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "counter emitted" true
    (contains "{\"name\":\"b.counter\",\"value\":7}");
  Alcotest.(check bool)
    "hist emitted with exact moments" true
    (contains "{\"name\":\"h\",\"count\":2,\"sum\":6,\"min\":3,\"max\":3");
  (* names sorted: a.counter before b.counter *)
  let idx sub =
    let n = String.length sub in
    let rec go i = if String.sub json i n = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool)
    "counters sorted by name" true
    (idx "a.counter" < idx "b.counter")

(* --- ambient shards: per-domain, merged after join --- *)

let test_ambient_parallel_merge () =
  Obs.Ambient.reset ();
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let shard = Obs.Ambient.get () in
            M.add (M.counter shard "test.ambient.ctr") (i + 1);
            H.observe (M.hist shard "test.ambient.hist") i))
  in
  Array.iter Domain.join domains;
  let merged = Obs.Ambient.merged () in
  Alcotest.(check int)
    "counter summed over shards" 10
    (M.value (M.counter merged "test.ambient.ctr"));
  let h = M.hist merged "test.ambient.hist" in
  Alcotest.(check int) "hist count" 4 (H.count h);
  Alcotest.(check int) "hist sum" 6 (H.sum h);
  Alcotest.(check bool)
    "equals the serial histogram" true
    (H.equal h (hist_of [ 0; 1; 2; 3 ]));
  Obs.Ambient.reset ()

(* --- tracer: one-branch when off, bounded ring when on --- *)

let test_tracer_ring () =
  Obs.Tracer.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Tracer.enabled ());
  Obs.Tracer.instant Obs.Tracer.ev_walk_read 8;
  Alcotest.(check int) "disabled emit records nothing" 0
    (Obs.Tracer.event_count ());
  Obs.Tracer.enable ~capacity:8 ();
  for i = 1 to 2 do
    Obs.Tracer.begin_ Obs.Tracer.ev_miss i;
    Obs.Tracer.instant Obs.Tracer.ev_walk_read (8 * i);
    Obs.Tracer.end_ Obs.Tracer.ev_miss
  done;
  Alcotest.(check int) "six events recorded" 6 (Obs.Tracer.event_count ());
  Alcotest.(check int) "no drops yet" 0 (Obs.Tracer.dropped_count ());
  for _ = 1 to 14 do
    Obs.Tracer.instant Obs.Tracer.ev_churn_touch 1
  done;
  Alcotest.(check int)
    "ring wraps at capacity" 8
    (Obs.Tracer.event_count ());
  Alcotest.(check int) "drops counted" 12 (Obs.Tracer.dropped_count ());
  let json = Obs.Tracer.to_chrome_json () in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "chrome JSON has %s" field)
        true (contains field))
    [ "\"traceEvents\""; "\"ph\""; "\"ts\""; "\"pid\""; "\"tid\"";
      "\"churn_touch\"" ];
  Obs.Tracer.disable ();
  Obs.Tracer.reset ();
  Alcotest.(check int) "reset drops events" 0 (Obs.Tracer.event_count ())

(* a saturated tracer ring must be visible in the exported metrics,
   not only the trace summary — the report gate breaches on it *)
let test_tracer_drop_counter () =
  Obs.Tracer.reset ();
  Obs.Tracer.enable ~capacity:8 ();
  for _ = 1 to 20 do
    Obs.Tracer.instant Obs.Tracer.ev_churn_touch 1
  done;
  Alcotest.(check int) "ring dropped the overflow" 12
    (Obs.Tracer.dropped_count ());
  let m = M.create () in
  Obs.Tracer.export_drop_counter m;
  Alcotest.(check int)
    "obs.trace.dropped mirrors the ring's tally"
    (Obs.Tracer.dropped_count ())
    (M.value (M.counter m "obs.trace.dropped"));
  Obs.Tracer.disable ();
  Obs.Tracer.reset ()

(* --- OpenMetrics exposition --- *)

let contains_sub hay sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1))
  in
  go 0

let test_openmetrics () =
  let m = M.create () in
  M.add (M.counter m "fleet.touch.1") 7;
  H.observe (M.hist m "walk.lines") 3;
  H.observe (M.hist m "walk.lines") 3;
  H.observe (M.hist m "walk.lines") 9;
  let text = M.to_openmetrics m in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition has %S" line)
        true
        (contains_sub text (line ^ "\n")))
    [
      "# TYPE ptsim_fleet_touch_1 counter";
      "ptsim_fleet_touch_1_total 7";
      "# TYPE ptsim_walk_lines histogram";
      (* log2 buckets, cumulative: {2,3} holds both 3s, {8..15} adds 9 *)
      "ptsim_walk_lines_bucket{le=\"3\"} 2";
      "ptsim_walk_lines_bucket{le=\"15\"} 3";
      "ptsim_walk_lines_bucket{le=\"+Inf\"} 3";
      "ptsim_walk_lines_sum 15";
      "ptsim_walk_lines_count 3";
    ];
  Alcotest.(check bool)
    "terminated by # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n")

(* --- the flight recorder ring --- *)

let record_n stream n =
  for i = 1 to n do
    Obs.Recorder.record ~stream ~kind:Obs.Recorder.k_insert ~asid:stream
      ~vpn:(100 + i) ~pages:1 ~lock:Obs.Recorder.l_striped ~attempt:0 ~fault:0
      ~lat:i
  done

let test_recorder_ring () =
  Obs.Recorder.disarm ();
  record_n 0 3;
  Alcotest.(check int) "disarmed record is a no-op" 0
    (Obs.Recorder.event_count ());
  Obs.Recorder.arm ~streams:2 ~capacity:4;
  Alcotest.(check bool) "armed" true (Obs.Recorder.armed ());
  record_n 0 6;
  record_n 1 2;
  (* stream 0 wrapped: 4 retained of 6 recorded; stream 1 kept both *)
  Alcotest.(check int) "retained = min(total, cap) per ring" 6
    (Obs.Recorder.event_count ());
  let dump = Obs.Recorder.dump_json ~label:"test" () in
  Alcotest.(check bool)
    "dump reports all recorded events" true
    (contains_sub dump "\"recorded\":6");
  Alcotest.(check bool)
    "oldest surviving stream-0 event is vpn 103" true
    (contains_sub dump "{\"kind\":\"insert\",\"asid\":0,\"vpn\":103");
  Alcotest.(check bool)
    "overwritten head is gone" false
    (contains_sub dump "\"asid\":0,\"vpn\":102");
  (* out-of-range streams are dropped, not an error *)
  record_n 9 1;
  Alcotest.(check int) "out-of-range stream ignored" 6
    (Obs.Recorder.event_count ());
  let tail = Obs.Recorder.dump_json ~last:1 ~label:"test" () in
  Alcotest.(check bool)
    "?last keeps only the newest per stream" true
    (contains_sub tail "\"vpn\":106" && not (contains_sub tail "\"vpn\":105"));
  Obs.Recorder.disarm ();
  Alcotest.(check bool) "disarmed again" false (Obs.Recorder.armed ())

let test_recorder_dump_deterministic () =
  let episode () =
    Obs.Recorder.arm ~streams:3 ~capacity:8;
    record_n 0 12;
    record_n 2 5;
    Obs.Recorder.dump_json ~last:4 ~label:"episode" ()
  in
  let a = episode () in
  let b = episode () in
  Alcotest.(check string) "same events => byte-identical dump" a b;
  Obs.Recorder.disarm ()

(* --- the per-phase series sampler --- *)

let series_json () =
  let buf = Buffer.create 256 in
  Obs.Series.write_json_fields buf;
  Buffer.contents buf

let count_sub hay sub =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length hay then acc
    else go (i + 1) (if String.sub hay i n = sub then acc + 1 else acc)
  in
  go 0 0

let test_series_push_and_mark () =
  Obs.Ambient.reset ();
  Obs.Series.reset ();
  Obs.Series.push ~label:"churn:test" ~index:0 [ ("churn.live_pages", 10) ];
  Obs.Series.push ~label:"churn:test" ~index:16 [ ("churn.live_pages", 14) ];
  M.add (Obs.Ambient.counter "test.series.ops") 5;
  H.observe (Obs.Ambient.hist "test.series.cost") 4;
  Obs.Series.mark ~label:"fleet:test" ~index:0;
  M.add (Obs.Ambient.counter "test.series.ops") 3;
  Obs.Series.mark ~label:"fleet:test" ~index:1;
  (* timing metrics never enter a series *)
  M.add (Obs.Ambient.counter "test.op_ns.skipme") 99;
  Obs.Series.mark ~label:"fleet:test" ~index:2;
  let json = series_json () in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "series has %s" sub)
        true (contains_sub json sub))
    [
      "\"series\":[";
      "{\"label\":\"churn:test\"";
      "{\"name\":\"churn.live_pages\",\"delta\":14}";
      "{\"label\":\"fleet:test\"";
      (* mark 0: cumulative 5; mark 1: delta 3 *)
      "{\"name\":\"test.series.ops\",\"delta\":5}";
      "{\"name\":\"test.series.ops\",\"delta\":3}";
      "{\"name\":\"test.series.cost\",\"p50\":4,\"p90\":4,\"p99\":4}";
    ];
  Alcotest.(check bool) "timing counters excluded" false
    (contains_sub json "op_ns");
  Obs.Series.reset ();
  Obs.Ambient.reset ();
  Alcotest.(check string) "reset empties the series" "\"series\":[]"
    (series_json ())

let test_series_downsample () =
  Obs.Series.reset ();
  for i = 0 to 199 do
    Obs.Series.push ~label:"dense" ~index:i [ ("v", i) ]
  done;
  Alcotest.(check int) "all points retained internally" 200
    (Obs.Series.point_count ());
  let json = series_json () in
  let points = count_sub json "{\"i\":" in
  Alcotest.(check bool)
    (Printf.sprintf "downsampled to <= 65 points (got %d)" points)
    true
    (points <= 65);
  Alcotest.(check bool) "first point kept" true (contains_sub json "{\"i\":0,");
  Alcotest.(check bool)
    "final point kept" true
    (contains_sub json "{\"i\":199,");
  Obs.Series.reset ()

(* --- structural probes --- *)

let attr = Pte.Attr.default

let test_probe_hashed () =
  let t = Baselines.Hashed_pt.create ~buckets:64 () in
  (* 200 mappings over 64 buckets: every bucket observed, mean chain =
     nodes/buckets *)
  for i = 0 to 199 do
    Baselines.Hashed_pt.insert_base t ~vpn:(Int64.of_int (i * 97))
      ~ppn:(Int64.of_int i) ~attr
  done;
  let r = Obs.Probe.hashed t in
  Alcotest.(check int)
    "one chain observation per bucket" 64
    (H.count r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "chains sum to node count"
    (Baselines.Hashed_pt.node_count t)
    (H.sum r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "occupancy sums to population" 200
    (H.sum r.Obs.Probe.occupancy);
  Alcotest.(check int)
    "one utilization observation per node"
    (Baselines.Hashed_pt.node_count t)
    (H.count r.Obs.Probe.node_util);
  Alcotest.(check (float 1e-9))
    "mean chain = load factor"
    (Baselines.Hashed_pt.load_factor t)
    (H.mean r.Obs.Probe.chain_length)

let test_probe_clustered () =
  let t =
    Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:64 ())
  in
  (* 30 full blocks of 16 base pages: 30 nodes, 480 mappings, every
     node fully utilized *)
  for b = 0 to 29 do
    for off = 0 to 15 do
      let vpn = Int64.of_int ((b * 41 * 16) + off) in
      Clustered_pt.Table.insert_base t ~vpn ~ppn:vpn ~attr
    done
  done;
  let r = Obs.Probe.clustered t in
  Alcotest.(check int)
    "one chain observation per bucket" 64
    (H.count r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "chains sum to node count"
    (Clustered_pt.Table.node_count t)
    (H.sum r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "occupancy sums to mappings" 480
    (H.sum r.Obs.Probe.occupancy);
  Alcotest.(check int)
    "full blocks fully utilized" 16
    (H.min_value r.Obs.Probe.node_util);
  Alcotest.(check int) "node_util max" 16 (H.max_value r.Obs.Probe.node_util)

(* --- the inspect acceptance: measured chain mean within 5% of the
   analytic load factor, per Table 1 workload --- *)

let inspect_options =
  { Sim.Runner.default_options with Sim.Runner.quick = true }

let test_inspect_matches_analytic () =
  List.iter
    (fun org ->
      let rows = Sim.Runner.inspect ~options:inspect_options ~org () in
      Alcotest.(check bool) "has rows" true (rows <> []);
      List.iter
        (fun (row : Sim.Runner.inspect_row) ->
          let rel =
            abs_float (row.Sim.Runner.ins_chain_mean -. row.Sim.Runner.ins_alpha)
            /. row.Sim.Runner.ins_alpha
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s chain mean %.4f within 5%% of alpha %.4f"
               row.Sim.Runner.ins_workload row.Sim.Runner.ins_chain_mean
               row.Sim.Runner.ins_alpha)
            true (rel <= 0.05))
        rows)
    [ `Clustered; `Hashed ]

let suite =
  ( "obs",
    [
      Alcotest.test_case "hist bucketing and moments" `Quick test_hist_buckets;
      Alcotest.test_case "hist empty and clear" `Quick test_hist_empty;
      Alcotest.test_case "hist quantile" `Quick test_hist_quantile;
      QCheck_alcotest.to_alcotest prop_quantile_monotone;
      QCheck_alcotest.to_alcotest prop_quantile_bounded;
      QCheck_alcotest.to_alcotest prop_quantile_exact_single;
      QCheck_alcotest.to_alcotest prop_merge_commutative;
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_shard_merge_equals_serial;
      Alcotest.test_case "metrics equality ignores zeros" `Quick
        test_metrics_equal_ignores_zero;
      Alcotest.test_case "metrics merge and JSON" `Quick
        test_metrics_merge_and_json;
      Alcotest.test_case "ambient shards merge to serial" `Quick
        test_ambient_parallel_merge;
      Alcotest.test_case "tracer ring wrap and export" `Quick test_tracer_ring;
      Alcotest.test_case "tracer drop counter exported" `Quick
        test_tracer_drop_counter;
      Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
      Alcotest.test_case "recorder ring wrap and dump" `Quick
        test_recorder_ring;
      Alcotest.test_case "recorder dump is deterministic" `Quick
        test_recorder_dump_deterministic;
      Alcotest.test_case "series push, mark and reset" `Quick
        test_series_push_and_mark;
      Alcotest.test_case "series downsampling" `Quick test_series_downsample;
      Alcotest.test_case "probe hashed structure" `Quick test_probe_hashed;
      Alcotest.test_case "probe clustered structure" `Quick
        test_probe_clustered;
      Alcotest.test_case "inspect matches analytic load factor" `Slow
        test_inspect_matches_analytic;
    ] )
