(* The telemetry layer (lib/obs): log2 histograms, the metrics
   registry, per-domain ambient shards, the ring-buffer tracer, and
   structural probes.  The load-bearing property throughout is that
   merging per-domain observations is a commutative, associative sum —
   that is what makes the merged telemetry of a parallel run equal to
   the serial run's. *)

module H = Obs.Hist
module M = Obs.Metrics

let hist_of values =
  let h = H.create () in
  List.iter (H.observe h) values;
  h

(* --- histogram bucketing and exact moments --- *)

let test_hist_buckets () =
  let h = hist_of [ 0; 1; 2; 3; 4; 7; 8; 1000 ] in
  Alcotest.(check int) "count" 8 (H.count h);
  Alcotest.(check int) "sum" 1025 (H.sum h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  Alcotest.(check (float 1e-9)) "mean is exact" (1025.0 /. 8.0) (H.mean h);
  let buckets = ref [] in
  H.iter_nonzero h (fun k c -> buckets := (k, c) :: !buckets);
  (* 0 | 1 | 2,3 | 4..7 | 8..15 | 512..1023 *)
  Alcotest.(check (list (pair int int)))
    "log2 bucket placement"
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 1); (10, 1) ]
    (List.rev !buckets);
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d bounds ordered" k)
        true
        (H.bucket_lo k <= H.bucket_hi k))
    !buckets

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (H.mean h);
  Alcotest.(check bool) "equal to fresh" true (H.equal h (H.create ()));
  H.observe h 5;
  H.clear h;
  Alcotest.(check bool) "cleared = fresh" true (H.equal h (H.create ()))

(* quantiles resolve to the upper bound of the bucket holding the
   rank, clamped to the observed maximum *)
let test_hist_quantile () =
  let h = hist_of [ 0; 1; 2; 3; 4; 7; 8; 1000 ] in
  Alcotest.(check int) "p12.5 lands in bucket {0}" 0 (H.quantile h ~q:0.125);
  Alcotest.(check int) "median = hi of bucket {2,3}" 3 (H.quantile h ~q:0.5);
  Alcotest.(check int) "p100 clamps to observed max" 1000 (H.quantile h ~q:1.0);
  Alcotest.(check int)
    "p99 of 8 samples is the max rank" 1000 (H.quantile h ~q:0.99);
  let one = hist_of [ 5 ] in
  Alcotest.(check int)
    "singleton clamps below bucket hi" 5 (H.quantile one ~q:0.99);
  Alcotest.(check int) "empty histogram" 0 (H.quantile (H.create ()) ~q:0.99);
  List.iter
    (fun q ->
      Alcotest.check_raises
        (Printf.sprintf "q = %g rejected" q)
        (Invalid_argument "Hist.quantile: q must be in (0, 1]")
        (fun () -> ignore (H.quantile h ~q)))
    [ 0.0; -0.5; 1.5 ]

(* --- merge is a commutative, associative sum (satellite 3) --- *)

let small_lists =
  QCheck.(triple (list small_nat) (list small_nat) (list small_nat))

let prop_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:200 small_lists
    (fun (a, b, _) ->
      let ab = hist_of a and ba = hist_of b in
      H.merge_into ~src:(hist_of b) ~dst:ab;
      H.merge_into ~src:(hist_of a) ~dst:ba;
      H.equal ab ba)

let prop_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:200 small_lists
    (fun (a, b, c) ->
      (* (a + b) + c *)
      let left = hist_of a in
      H.merge_into ~src:(hist_of b) ~dst:left;
      H.merge_into ~src:(hist_of c) ~dst:left;
      (* a + (b + c) *)
      let bc = hist_of b in
      H.merge_into ~src:(hist_of c) ~dst:bc;
      let right = hist_of a in
      H.merge_into ~src:bc ~dst:right;
      H.equal left right)

let prop_shard_merge_equals_serial =
  QCheck.Test.make
    ~name:"sharded observation + merge = single-domain histogram" ~count:200
    QCheck.(pair (list small_nat) (int_range 1 8))
    (fun (values, shards) ->
      (* deal the observation stream round-robin over [shards] hists,
         exactly as streams are dealt over domains, then merge *)
      let parts = Array.init shards (fun _ -> H.create ()) in
      List.iteri (fun i v -> H.observe parts.(i mod shards) v) values;
      let merged = H.create () in
      Array.iter (fun p -> H.merge_into ~src:p ~dst:merged) parts;
      H.equal merged (hist_of values))

(* --- metrics registry --- *)

let test_metrics_equal_ignores_zero () =
  let a = M.create () and b = M.create () in
  ignore (M.counter a "touched.but.zero");
  ignore (M.hist a "empty.hist");
  Alcotest.(check bool)
    "zero counters and empty hists don't break equality" true (M.equal a b);
  M.incr (M.counter a "x");
  Alcotest.(check bool) "nonzero counter breaks it" false (M.equal a b)

let test_metrics_merge_and_json () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "b.counter") 2;
  M.incr (M.counter a "a.counter");
  H.observe (M.hist a "h") 3;
  M.add (M.counter b "b.counter") 5;
  H.observe (M.hist b "h") 3;
  M.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged counter" 7 (M.value (M.counter a "b.counter"));
  Alcotest.(check int) "merged hist" 2 (H.count (M.hist a "h"));
  let json = M.to_json a in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "counter emitted" true
    (contains "{\"name\":\"b.counter\",\"value\":7}");
  Alcotest.(check bool)
    "hist emitted with exact moments" true
    (contains "{\"name\":\"h\",\"count\":2,\"sum\":6,\"min\":3,\"max\":3");
  (* names sorted: a.counter before b.counter *)
  let idx sub =
    let n = String.length sub in
    let rec go i = if String.sub json i n = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool)
    "counters sorted by name" true
    (idx "a.counter" < idx "b.counter")

(* --- ambient shards: per-domain, merged after join --- *)

let test_ambient_parallel_merge () =
  Obs.Ambient.reset ();
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let shard = Obs.Ambient.get () in
            M.add (M.counter shard "test.ambient.ctr") (i + 1);
            H.observe (M.hist shard "test.ambient.hist") i))
  in
  Array.iter Domain.join domains;
  let merged = Obs.Ambient.merged () in
  Alcotest.(check int)
    "counter summed over shards" 10
    (M.value (M.counter merged "test.ambient.ctr"));
  let h = M.hist merged "test.ambient.hist" in
  Alcotest.(check int) "hist count" 4 (H.count h);
  Alcotest.(check int) "hist sum" 6 (H.sum h);
  Alcotest.(check bool)
    "equals the serial histogram" true
    (H.equal h (hist_of [ 0; 1; 2; 3 ]));
  Obs.Ambient.reset ()

(* --- tracer: one-branch when off, bounded ring when on --- *)

let test_tracer_ring () =
  Obs.Tracer.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Tracer.enabled ());
  Obs.Tracer.instant Obs.Tracer.ev_walk_read 8;
  Alcotest.(check int) "disabled emit records nothing" 0
    (Obs.Tracer.event_count ());
  Obs.Tracer.enable ~capacity:8 ();
  for i = 1 to 2 do
    Obs.Tracer.begin_ Obs.Tracer.ev_miss i;
    Obs.Tracer.instant Obs.Tracer.ev_walk_read (8 * i);
    Obs.Tracer.end_ Obs.Tracer.ev_miss
  done;
  Alcotest.(check int) "six events recorded" 6 (Obs.Tracer.event_count ());
  Alcotest.(check int) "no drops yet" 0 (Obs.Tracer.dropped_count ());
  for _ = 1 to 14 do
    Obs.Tracer.instant Obs.Tracer.ev_churn_touch 1
  done;
  Alcotest.(check int)
    "ring wraps at capacity" 8
    (Obs.Tracer.event_count ());
  Alcotest.(check int) "drops counted" 12 (Obs.Tracer.dropped_count ());
  let json = Obs.Tracer.to_chrome_json () in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "chrome JSON has %s" field)
        true (contains field))
    [ "\"traceEvents\""; "\"ph\""; "\"ts\""; "\"pid\""; "\"tid\"";
      "\"churn_touch\"" ];
  Obs.Tracer.disable ();
  Obs.Tracer.reset ();
  Alcotest.(check int) "reset drops events" 0 (Obs.Tracer.event_count ())

(* --- structural probes --- *)

let attr = Pte.Attr.default

let test_probe_hashed () =
  let t = Baselines.Hashed_pt.create ~buckets:64 () in
  (* 200 mappings over 64 buckets: every bucket observed, mean chain =
     nodes/buckets *)
  for i = 0 to 199 do
    Baselines.Hashed_pt.insert_base t ~vpn:(Int64.of_int (i * 97))
      ~ppn:(Int64.of_int i) ~attr
  done;
  let r = Obs.Probe.hashed t in
  Alcotest.(check int)
    "one chain observation per bucket" 64
    (H.count r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "chains sum to node count"
    (Baselines.Hashed_pt.node_count t)
    (H.sum r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "occupancy sums to population" 200
    (H.sum r.Obs.Probe.occupancy);
  Alcotest.(check int)
    "one utilization observation per node"
    (Baselines.Hashed_pt.node_count t)
    (H.count r.Obs.Probe.node_util);
  Alcotest.(check (float 1e-9))
    "mean chain = load factor"
    (Baselines.Hashed_pt.load_factor t)
    (H.mean r.Obs.Probe.chain_length)

let test_probe_clustered () =
  let t =
    Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:64 ())
  in
  (* 30 full blocks of 16 base pages: 30 nodes, 480 mappings, every
     node fully utilized *)
  for b = 0 to 29 do
    for off = 0 to 15 do
      let vpn = Int64.of_int ((b * 41 * 16) + off) in
      Clustered_pt.Table.insert_base t ~vpn ~ppn:vpn ~attr
    done
  done;
  let r = Obs.Probe.clustered t in
  Alcotest.(check int)
    "one chain observation per bucket" 64
    (H.count r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "chains sum to node count"
    (Clustered_pt.Table.node_count t)
    (H.sum r.Obs.Probe.chain_length);
  Alcotest.(check int)
    "occupancy sums to mappings" 480
    (H.sum r.Obs.Probe.occupancy);
  Alcotest.(check int)
    "full blocks fully utilized" 16
    (H.min_value r.Obs.Probe.node_util);
  Alcotest.(check int) "node_util max" 16 (H.max_value r.Obs.Probe.node_util)

(* --- the inspect acceptance: measured chain mean within 5% of the
   analytic load factor, per Table 1 workload --- *)

let inspect_options =
  { Sim.Runner.default_options with Sim.Runner.quick = true }

let test_inspect_matches_analytic () =
  List.iter
    (fun org ->
      let rows = Sim.Runner.inspect ~options:inspect_options ~org () in
      Alcotest.(check bool) "has rows" true (rows <> []);
      List.iter
        (fun (row : Sim.Runner.inspect_row) ->
          let rel =
            abs_float (row.Sim.Runner.ins_chain_mean -. row.Sim.Runner.ins_alpha)
            /. row.Sim.Runner.ins_alpha
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s chain mean %.4f within 5%% of alpha %.4f"
               row.Sim.Runner.ins_workload row.Sim.Runner.ins_chain_mean
               row.Sim.Runner.ins_alpha)
            true (rel <= 0.05))
        rows)
    [ `Clustered; `Hashed ]

let suite =
  ( "obs",
    [
      Alcotest.test_case "hist bucketing and moments" `Quick test_hist_buckets;
      Alcotest.test_case "hist empty and clear" `Quick test_hist_empty;
      Alcotest.test_case "hist quantile" `Quick test_hist_quantile;
      QCheck_alcotest.to_alcotest prop_merge_commutative;
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_shard_merge_equals_serial;
      Alcotest.test_case "metrics equality ignores zeros" `Quick
        test_metrics_equal_ignores_zero;
      Alcotest.test_case "metrics merge and JSON" `Quick
        test_metrics_merge_and_json;
      Alcotest.test_case "ambient shards merge to serial" `Quick
        test_ambient_parallel_merge;
      Alcotest.test_case "tracer ring wrap and export" `Quick test_tracer_ring;
      Alcotest.test_case "probe hashed structure" `Quick test_probe_hashed;
      Alcotest.test_case "probe clustered structure" `Quick
        test_probe_clustered;
      Alcotest.test_case "inspect matches analytic load factor" `Slow
        test_inspect_matches_analytic;
    ] )
