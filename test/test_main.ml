let () =
  Alcotest.run "clustered-page-tables"
    [
      Test_bits.suite;
      Test_addr.suite;
      Test_pte.suite;
      Test_mem.suite;
      Test_tlb.suite;
      Test_clustered.suite;
      Test_hashed.suite;
      Test_linear.suite;
      Test_forward.suite;
      Test_os.suite;
      Test_workload.suite;
      Test_sim.suite;
      Test_edge.suite;
      Test_runner.suite;
      Test_parallel.suite;
      Test_bucket_stress.suite;
      Test_dynamics.suite;
      Test_service.suite;
      Test_fault.suite;
      Test_obs.suite;
      Test_numa.suite;
      Test_fleet.suite;
      Test_durable.suite;
      Test_report.suite;
    ]
