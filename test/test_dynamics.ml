(* The churn subsystem: generator determinism, engine determinism and
   domain-count invariance, the zero-leak drain guarantee, COW fork
   semantics, and a PT-vs-OS-bookkeeping oracle under random
   map/unmap/touch churn. *)

module A = Os_policy.Address_space
module Intf = Pt_common.Intf
module C = Dynamics.Churn
module E = Dynamics.Engine

let attr = Pte.Attr.default

let small_spec ops =
  { C.default with C.ops; max_live_pages = 4_000; region_max = 96 }

let engine_cfg ?(policy = A.Superpage_promotion) () =
  {
    E.make_pt = (fun () -> Sim.Factory.make_probed Sim.Factory.clustered16);
    policy;
    subblock_factor = 16;
    total_pages = 1 lsl 15;
    sample_every = 200;
    line_size = Mem.Cache_model.default_line_size;
  }

let test_generator_deterministic () =
  let spec = small_spec 1_200 in
  let t1 = C.generate ~spec ~seed:7L () in
  let t2 = C.generate ~spec ~seed:7L () in
  Alcotest.(check bool) "same seed, same stream" true (t1 = t2);
  let t3 = C.generate ~spec ~seed:9L () in
  Alcotest.(check bool) "different seed, different stream" false (t1 = t3)

let test_engine_deterministic () =
  let trace = C.generate ~spec:(small_spec 1_200) ~seed:7L () in
  let r1 = E.run (engine_cfg ()) trace in
  let r2 = E.run (engine_cfg ()) trace in
  Alcotest.(check bool)
    "identical results, samples included" true (r1 = r2)

(* the churn streams actually exercise the lifecycle: forks, COW
   breaks, promotions and demotions all occur *)
let test_engine_exercises_lifecycle () =
  let trace = C.generate ~spec:(small_spec 2_000) ~seed:11L () in
  let r = E.run (engine_cfg ()) trace in
  Alcotest.(check bool) "inserts" true (r.E.inserts > 0);
  Alcotest.(check bool) "deletes" true (r.E.deletes > 0);
  Alcotest.(check bool) "forks" true (r.E.forks > 0);
  Alcotest.(check bool) "cow activity" true
    (r.E.cow_breaks + r.E.cow_adoptions > 0);
  Alcotest.(check bool) "promotions" true (r.E.promotions > 0);
  Alcotest.(check bool) "demotions" true (r.E.demotions > 0);
  Alcotest.(check bool) "insert walks charged" true (r.E.insert_lines > 0.0)

(* After the drain suffix unmaps everything, every surviving process's
   clustered table must hold zero live nodes and sit exactly at the
   empty-table footprint — the reclamation guarantee end to end. *)
let test_zero_leak_after_drain () =
  let empty_bytes =
    Intf.size_bytes (fst (Sim.Factory.make_probed Sim.Factory.clustered16))
  in
  List.iter
    (fun policy ->
      let trace = C.generate ~spec:(small_spec 2_000) ~seed:13L () in
      let r = E.run (engine_cfg ~policy ()) trace in
      let live_procs = r.E.forks - r.E.exits + 1 in
      Alcotest.(check int) "no live pages" 0 r.E.final_live_pages;
      Alcotest.(check int) "no live nodes" 0 r.E.final_pt_nodes;
      Alcotest.(check int) "empty-table footprint"
        (live_procs * empty_bytes) r.E.final_pt_bytes)
    [ A.Base_only; A.Partial_subblock; A.Superpage_promotion ]

(* Runner.churn fans (organization, seed) jobs over the domain pool;
   the joined rows must be bit-identical for any domain count. *)
let test_domain_invariance () =
  let rows d = Sim.Runner.churn ~domains:d ~seeds:2 ~ops:600 () in
  Alcotest.(check bool) "1 domain = 3 domains" true (rows 1 = rows 3)

let region first pages =
  Addr.Region.make ~first_vpn:(Int64.of_int first) ~pages

let test_cow_divergence () =
  let pt = Sim.Factory.make Sim.Factory.clustered16 in
  let parent =
    A.create ~pt ~total_pages:4096 ~policy:A.Base_only ~uid:101 ()
  in
  A.map_region parent (region 64 8) attr;
  let child_pt = Sim.Factory.make Sim.Factory.clustered16 in
  let child = A.fork parent ~pt:child_pt ~uid:102 () in
  Alcotest.(check int) "parent cow pages" 8 (A.cow_pages parent);
  Alcotest.(check int) "child cow pages" 8 (A.cow_pages child);
  Alcotest.(check int) "shared frames" 8 (A.shared_frames parent);
  let vpn = 66L in
  let orig = Option.get (A.translate parent ~vpn) in
  (match A.touch child ~vpn with
  | `Cow_copied fresh ->
      Alcotest.(check bool) "fresh frame" false (Int64.equal fresh orig);
      Alcotest.(check (option int64)) "child remapped" (Some fresh)
        (A.translate child ~vpn);
      Alcotest.(check (option int64)) "parent untouched" (Some orig)
        (A.translate parent ~vpn);
      (* both page tables reflect the divergence *)
      (match fst (Intf.lookup child_pt ~vpn) with
      | Some tr ->
          Alcotest.(check int64) "child PT has fresh frame" fresh
            tr.Pt_common.Types.ppn
      | None -> Alcotest.fail "child PT lost the page");
      (match fst (Intf.lookup pt ~vpn) with
      | Some tr ->
          Alcotest.(check int64) "parent PT keeps old frame" orig
            tr.Pt_common.Types.ppn
      | None -> Alcotest.fail "parent PT lost the page")
  | _ -> Alcotest.fail "expected Cow_copied");
  (* the parent is now the last sharer of this frame: adopt in place *)
  (match A.touch parent ~vpn with
  | `Cow_adopted -> ()
  | _ -> Alcotest.fail "expected Cow_adopted");
  Alcotest.(check int) "parent cow shrank" 7 (A.cow_pages parent);
  (match A.touch parent ~vpn with
  | `Write -> ()
  | _ -> Alcotest.fail "adopted page is plainly writable");
  (* releasing both spaces frees every family frame *)
  A.release_all child;
  A.release_all parent;
  Alcotest.(check int) "no shared frames" 0 (A.shared_frames parent)

(* Oracle: after arbitrary fault/unmap/touch churn, the page table
   agrees with the OS's own vpn->ppn bookkeeping on every page, for
   every page-size policy.  Catches double-representation bugs (a page
   covered by both a base PTE and a psb/superpage PTE) that only
   dynamic workloads expose. *)
let test_pt_matches_mappings () =
  List.iter
    (fun (policy, uid) ->
      let pt = Sim.Factory.make Sim.Factory.clustered16 in
      let t =
        A.create ~pt ~total_pages:(1 lsl 14) ~policy ~uid ()
      in
      A.declare_region t (region 0 512) attr;
      let rng = Workload.Prng.create ~seed:0x0D15EA5EL in
      for _ = 1 to 600 do
        let v = Workload.Prng.int rng ~bound:512 in
        let r = Workload.Prng.int rng ~bound:100 in
        if r < 55 then ignore (A.fault t ~vpn:(Int64.of_int v))
        else if r < 85 then
          let len = 1 + Workload.Prng.int rng ~bound:32 in
          A.unmap_region t (region v (min len (512 - v)))
        else ignore (A.touch t ~vpn:(Int64.of_int v))
      done;
      for v = 0 to 511 do
        let vpn = Int64.of_int v in
        match (A.translate t ~vpn, fst (Intf.lookup pt ~vpn)) with
        | None, None -> ()
        | Some ppn, Some tr ->
            if not (Int64.equal ppn tr.Pt_common.Types.ppn) then
              Alcotest.failf "vpn %Ld: OS says %Ld, PT says %Ld" vpn ppn
                tr.Pt_common.Types.ppn
        | Some ppn, None ->
            Alcotest.failf "vpn %Ld: mapped to %Ld but absent from PT" vpn ppn
        | None, Some tr ->
            Alcotest.failf "vpn %Ld: stale PT entry for %Ld" vpn
              tr.Pt_common.Types.ppn
      done;
      Alcotest.(check int) "population = mapped pages" (A.mapped_pages t)
        (Intf.population pt))
    [ (A.Base_only, 201); (A.Partial_subblock, 202);
      (A.Superpage_promotion, 203) ]

let suite =
  ( "dynamics",
    [
      Alcotest.test_case "churn generator deterministic" `Quick
        test_generator_deterministic;
      Alcotest.test_case "engine deterministic" `Quick
        test_engine_deterministic;
      Alcotest.test_case "engine exercises the lifecycle" `Quick
        test_engine_exercises_lifecycle;
      Alcotest.test_case "zero leak after drain" `Quick
        test_zero_leak_after_drain;
      Alcotest.test_case "runner domain-count invariance" `Slow
        test_domain_invariance;
      Alcotest.test_case "COW fork divergence" `Quick test_cow_divergence;
      Alcotest.test_case "PT agrees with OS mappings under churn" `Quick
        test_pt_matches_mappings;
    ] )
