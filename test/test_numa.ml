(* NUMA replication: the machine cost model, per-bucket generation
   counters, replica agreement under eager and lazy fan-out (qcheck
   convergence at quiesce), a concurrent 4-domain oracle per
   organization, cross-replica fsck vs the corruption injector (no
   false negatives), the migration policy, domain-count invariance of
   the numa driver, and a replica-write fault soak ending clean. *)

module M = Numa.Machine
module R = Numa.Replicated
module P = Numa.Policy
module NS = Numa.Numa_sim
module G = Clustered_pt.Generation
module S = Pt_service.Service
module WP = Exec.Worker_pool

let attr = Pte.Attr.default

(* --- machine cost model --- *)

let test_machine_costs () =
  let m = M.make ~nodes:4 ~local_cost:1 ~remote_cost:4 () in
  Alcotest.(check int) "nodes" 4 (M.nodes m);
  Alcotest.(check bool) "local" true (M.is_local m ~reader:2 ~home:2);
  Alcotest.(check bool) "remote" false (M.is_local m ~reader:2 ~home:0);
  Alcotest.(check int) "local line" 1 (M.line_cost m ~reader:1 ~home:1);
  Alcotest.(check int) "remote line" 4 (M.line_cost m ~reader:1 ~home:3);
  Alcotest.(check int) "walk cost" 12 (M.walk_cost m ~reader:0 ~home:1 ~lines:3);
  Alcotest.check_raises "remote < local rejected"
    (Invalid_argument "Machine.make: remote_cost must be >= local_cost")
    (fun () -> ignore (M.make ~nodes:2 ~local_cost:5 ~remote_cost:2 ()));
  Alcotest.check_raises "zero nodes rejected"
    (Invalid_argument "Machine.make: nodes must be >= 1") (fun () ->
      ignore (M.make ~nodes:0 ()))

(* --- per-bucket generation counters --- *)

let test_generation_counters () =
  let g = G.create ~buckets:8 in
  Alcotest.(check int) "fresh" 0 (G.get g ~bucket:3);
  Alcotest.(check int) "bump returns new" 1 (G.bump g ~bucket:3);
  Alcotest.(check int) "bump again" 2 (G.bump g ~bucket:3);
  G.set_at_least g ~bucket:3 1;
  Alcotest.(check int) "set_at_least never regresses" 2 (G.get g ~bucket:3);
  G.set_at_least g ~bucket:5 7;
  Alcotest.(check int) "set_at_least raises" 7 (G.get g ~bucket:5);
  Alcotest.(check (array int))
    "snapshot" [| 0; 0; 0; 2; 0; 7; 0; 0 |] (G.snapshot g)

(* --- helpers --- *)

let machine nodes = M.make ~nodes ()

let make ?buckets ~org ~mode nodes =
  R.create ?buckets ~machine:(machine nodes) ~org ~locking:S.Seqlock ~mode ()

let vpn_of i = Int64.of_int (0x5000 + (i * 17))

(* a deterministic mixed op stream applied from rotating nodes *)
let apply_stream repl ~nodes ~ops ~seed model =
  for i = 0 to ops - 1 do
    let r = Addr.Bits.mix64 (Int64.of_int ((seed * 1_000_003) + i)) in
    let node = i mod nodes in
    let vpn = vpn_of (Int64.to_int (Int64.logand r 0xFFL)) in
    let pct = Int64.to_int (Int64.logand (Int64.shift_right_logical r 8) 99L) in
    if pct < 55 then begin
      let ppn = Int64.logand (Int64.shift_right_logical r 16) 0xFFFFFL in
      R.insert ~node repl ~vpn ~ppn ~attr;
      Hashtbl.replace model vpn ppn
    end
    else if pct < 80 then begin
      R.remove ~node repl ~vpn;
      Hashtbl.remove model vpn
    end
    else ignore (R.lookup repl ~node ~vpn)
  done

let check_against_model repl ~nodes model =
  Hashtbl.iter
    (fun vpn _ ->
      for node = 0 to nodes - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "vpn 0x%Lx present on node %d" vpn node)
          true
          (R.lookup repl ~node ~vpn)
      done)
    model;
  Alcotest.(check int) "population" (Hashtbl.length model) (R.population repl)

(* --- eager fan-out keeps every replica equal --- *)

let test_eager_replicas_agree () =
  List.iter
    (fun org ->
      let nodes = 3 in
      let repl = make ~buckets:64 ~org ~mode:R.Eager nodes in
      let model = Hashtbl.create 64 in
      apply_stream repl ~nodes ~ops:800 ~seed:1 model;
      R.quiesce repl;
      check_against_model repl ~nodes model;
      Alcotest.(check bool)
        "fsck clean (per-replica + cross-replica)" true
        (Fsck.clean (R.fsck repl));
      let s = R.stats repl in
      Alcotest.(check int)
        "eager write amplification = nodes"
        (s.R.logical_writes * nodes)
        s.R.replica_writes)
    [ S.Clustered; S.Hashed ]

(* --- lazy catch-up: qcheck convergence at quiesce --- *)

let test_lazy_convergence_qcheck =
  QCheck.Test.make ~count:60 ~name:"lazy writes + catch-ups converge at sync"
    QCheck.(
      pair (int_bound 1_000_000) (pair (int_range 2 4) (int_range 50 400)))
    (fun (seed, (nodes, ops)) ->
      let repl = make ~buckets:32 ~org:S.Clustered ~mode:R.Lazy nodes in
      let model = Hashtbl.create 64 in
      apply_stream repl ~nodes ~ops ~seed model;
      (* mid-run staleness is expected; quiesce must erase it *)
      R.quiesce repl;
      if R.pending_ops repl <> 0 then
        QCheck.Test.fail_report "journal not drained at quiesce";
      if R.stale_buckets repl <> 0 then
        QCheck.Test.fail_report "stale buckets survived quiesce";
      if not (Fsck.clean (R.fsck repl)) then
        QCheck.Test.fail_report "replicas diverged after quiesce";
      Hashtbl.fold
        (fun vpn _ ok ->
          ok
          && List.for_all
               (fun node -> R.lookup repl ~node ~vpn)
               (List.init nodes Fun.id))
        model
        (R.population repl = Hashtbl.length model))

(* lazy reads trigger pull-on-read catch-up rather than serving stale
   buckets: a write at the primary is visible from every node's next
   read, no sync needed *)
let test_lazy_read_sees_writes () =
  let nodes = 3 in
  let repl = make ~buckets:16 ~org:S.Hashed ~mode:R.Lazy nodes in
  R.insert ~node:0 repl ~vpn:0x77L ~ppn:0x1234L ~attr;
  Alcotest.(check bool) "stale replicas exist" true (R.stale_buckets repl > 0);
  for node = 0 to nodes - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d reads through catch-up" node)
      true
      (R.lookup repl ~node ~vpn:0x77L)
  done;
  let s = R.stats repl in
  Alcotest.(check bool) "catch-up episodes recorded" true (s.R.catchups > 0);
  R.remove ~node:2 repl ~vpn:0x77L;
  for node = 0 to nodes - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d sees the remove" node)
      false
      (R.lookup repl ~node ~vpn:0x77L)
  done

(* --- concurrent 4-domain oracle per organization --- *)

let test_concurrent_oracle () =
  List.iter
    (fun org ->
      List.iter
        (fun mode ->
          let nodes = 4 in
          let domains = 4 in
          let repl = make ~org ~mode nodes in
          (* stream s owns the VPNs whose bucket lands on s mod
             streams: chains never cross streams, so the concurrent
             run is equivalent to any sequential interleaving *)
          let streams = nodes in
          let pools = Array.make streams [] in
          let v = ref 0x9_0000L in
          let assigned = ref 0 in
          while !assigned < streams * 64 do
            let s = R.bucket_of repl ~vpn:!v mod streams in
            if List.length (Array.get pools s) < 64 then begin
              pools.(s) <- !v :: pools.(s);
              incr assigned
            end;
            v := Int64.add !v 1L
          done;
          let model = Hashtbl.create 256 in
          (* sequential oracle first *)
          Array.iteri
            (fun s pool ->
              List.iteri
                (fun i vpn ->
                  if (i + s) mod 3 < 2 then
                    Hashtbl.replace model vpn (Int64.logand vpn 0xFFFFL)
                  else Hashtbl.remove model vpn)
                pool)
            pools;
          WP.with_pool ~epochs:(R.reader_epochs repl) ~domains (fun pool ->
              WP.run pool (fun d ->
                  Array.iteri
                    (fun s stream_pool ->
                      if s mod domains = d then
                        List.iteri
                          (fun i vpn ->
                            let node = s mod nodes in
                            if (i + s) mod 3 < 2 then
                              R.insert ~node repl ~vpn
                                ~ppn:(Int64.logand vpn 0xFFFFL) ~attr
                            else R.remove ~node repl ~vpn;
                            ignore (R.lookup repl ~node ~vpn))
                          stream_pool)
                    pools));
          R.quiesce repl;
          check_against_model repl ~nodes model;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s fsck clean" (S.org_name org)
               (R.mode_name mode))
            true
            (Fsck.clean (R.fsck repl)))
        [ R.Eager; R.Lazy ])
    [ S.Clustered; S.Hashed ]

(* --- cross-replica fsck vs the corruption injector --- *)

let test_corruption_no_false_negatives () =
  List.iter
    (fun org ->
      List.iter
        (fun kind ->
          let repl = make ~buckets:32 ~org ~mode:R.Eager 3 in
          let model = Hashtbl.create 64 in
          apply_stream repl ~nodes:3 ~ops:300 ~seed:5 model;
          R.quiesce repl;
          Alcotest.(check bool)
            (Printf.sprintf "%s healthy before %s" (S.org_name org) kind)
            true
            (Fsck.clean (R.fsck repl));
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s found a site" (S.org_name org) kind)
            true (R.corrupt repl kind);
          Alcotest.(check bool)
            (Printf.sprintf "%s: fsck catches %s" (S.org_name org) kind)
            false
            (Fsck.clean (R.fsck repl)))
        R.corruption_kinds)
    [ S.Clustered; S.Hashed ]

(* a single-replica configuration has no cross-replica sites *)
let test_corruption_needs_replicas () =
  let repl = make ~buckets:32 ~org:S.Clustered ~mode:R.Single_home 2 in
  R.insert ~node:0 repl ~vpn:0x10L ~ppn:0x20L ~attr;
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (kind ^ " inapplicable with one replica")
        false (R.corrupt repl kind))
    R.corruption_kinds

(* --- migration policy --- *)

let test_policy_decisions () =
  let m = M.make ~nodes:4 ~local_cost:1 ~remote_cost:4 () in
  (* read-mostly from everywhere: replicate *)
  Alcotest.(check bool)
    "hot read-mostly space replicates" true
    (P.decide m ~reads_per_node:[| 500; 500; 500; 500 |] ~writes:10
    = P.Replicate);
  (* write-heavy with one dominant reader: home it there *)
  Alcotest.(check bool)
    "write-heavy space homes at its dominant reader" true
    (P.decide m ~reads_per_node:[| 5; 400; 5; 5 |] ~writes:300 = P.Home 1);
  (* no reads at all: stay single-homed *)
  Alcotest.(check bool)
    "idle space stays homed" true
    (match P.decide m ~reads_per_node:[| 0; 0; 0; 0 |] ~writes:50 with
    | P.Home _ -> true
    | P.Replicate -> false);
  Alcotest.check_raises "slot count enforced"
    (Invalid_argument "Policy.decide: reads_per_node must have one slot per node")
    (fun () -> ignore (P.decide m ~reads_per_node:[| 1; 2 |] ~writes:0))

let test_policy_reduces_remote_lines () =
  List.iter
    (fun org ->
      let row = NS.run_policy NS.quick_config ~org ~nodes:4 in
      Alcotest.(check bool)
        (S.org_name org ^ ": policy beats single-home baseline")
        true
        (row.NS.p_policy_remote_lines < row.NS.p_baseline_remote_lines);
      Alcotest.(check bool)
        (S.org_name org ^ ": policy replicated and homed spaces")
        true
        (row.NS.p_replicated > 0 && row.NS.p_homed > 0))
    [ S.Clustered; S.Hashed ]

(* --- the numa driver: domain-count invariance and the fault soak --- *)

let test_numa_sim_domain_invariance () =
  let cfg = { NS.quick_config with NS.node_counts = [ 3 ] } in
  let run domains = NS.run { cfg with NS.domains } in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check bool)
    "rows and policy identical for 1 and 4 domains" true
    (serial = parallel);
  Alcotest.(check bool) "all rows fsck clean" true (NS.all_clean serial);
  Alcotest.(check string)
    "JSON byte-identical"
    (NS.outcome_to_json { cfg with NS.domains = 1 } serial)
    (NS.outcome_to_json { cfg with NS.domains = 4 } parallel)

let test_numa_sim_fault_soak () =
  let cfg =
    {
      NS.quick_config with
      NS.node_counts = [ 2 ];
      modes = [ R.Eager ];
      orgs = [ S.Clustered ];
      fault_rate_ppm = 200_000;
    }
  in
  let row = NS.run_one cfg ~org:S.Clustered ~mode:R.Eager ~nodes:2 in
  Alcotest.(check bool) "faults actually fired" true (row.NS.r_injected > 0);
  Alcotest.(check bool)
    "degraded buckets healed by catch-up" true
    (row.NS.r_eager_skips > 0 || row.NS.r_injected > 0);
  Alcotest.(check bool) "soak ends fsck-clean" true row.NS.r_fsck_clean;
  (* and identically so for any worker count *)
  let again d = NS.run_one { cfg with NS.domains = d } ~org:S.Clustered
      ~mode:R.Eager ~nodes:2
  in
  Alcotest.(check bool) "soak domain-invariant" true (again 1 = again 3)

(* --- churn replay per node --- *)

let test_numa_replay_invariance () =
  let spec =
    {
      Dynamics.Churn.default with
      Dynamics.Churn.ops = 1_500;
      max_procs = 6;
      max_live_pages = 3_000;
    }
  in
  let trace = Dynamics.Churn.generate ~spec ~seed:0xBEEFL () in
  List.iter
    (fun mode ->
      let run domains =
        Dynamics.Numa_replay.run ~domains ~machine:(machine 3)
          ~org:S.Clustered ~locking:S.Striped ~mode trace
      in
      let serial = run 1 in
      let parallel = run 4 in
      Alcotest.(check bool)
        (R.mode_name mode ^ " replay identical for 1 and 4 domains")
        true (serial = parallel);
      Alcotest.(check bool)
        "replay did real work" true
        (serial.Dynamics.Numa_replay.inserts > 0
        && serial.Dynamics.Numa_replay.families > 0);
      Alcotest.(check bool)
        "replay ends fsck-clean" true serial.Dynamics.Numa_replay.fsck_clean;
      Alcotest.(check int)
        "replica writes = logical x replicas at quiesce"
        (serial.Dynamics.Numa_replay.logical_writes
        * (if mode = R.Single_home then 1 else 3))
        serial.Dynamics.Numa_replay.replica_writes)
    [ R.Single_home; R.Eager; R.Lazy ]

let suite =
  ( "numa",
    [
      Alcotest.test_case "machine cost model" `Quick test_machine_costs;
      Alcotest.test_case "generation counters" `Quick test_generation_counters;
      Alcotest.test_case "eager replicas agree" `Quick
        test_eager_replicas_agree;
      QCheck_alcotest.to_alcotest test_lazy_convergence_qcheck;
      Alcotest.test_case "lazy reads pull catch-up" `Quick
        test_lazy_read_sees_writes;
      Alcotest.test_case "concurrent 4-domain oracle" `Slow
        test_concurrent_oracle;
      Alcotest.test_case "corruption injector: no false negatives" `Quick
        test_corruption_no_false_negatives;
      Alcotest.test_case "corruption needs replicas" `Quick
        test_corruption_needs_replicas;
      Alcotest.test_case "policy decisions" `Quick test_policy_decisions;
      Alcotest.test_case "policy reduces remote lines" `Slow
        test_policy_reduces_remote_lines;
      Alcotest.test_case "numa driver domain-invariant" `Slow
        test_numa_sim_domain_invariance;
      Alcotest.test_case "replica-write fault soak" `Slow
        test_numa_sim_fault_soak;
      Alcotest.test_case "churn replay per node" `Slow
        test_numa_replay_invariance;
    ] )
