ptsim must never report success for an invocation it did not run.  A
bare invocation used to print generic usage on stdout and exit 0,
letting typo'd scripts and CI steps sail through green; it is now an
error on stderr with a nonzero exit, like every other malformed
invocation.

Bare invocation:

  $ ptsim
  ptsim: missing subcommand
  Usage: ptsim [COMMAND] …
  Try 'ptsim --help' for more information.
  [124]

An unknown subcommand names the offending token:

  $ ptsim nonsense
  ptsim: unknown command 'nonsense', must be one of 'ablations', 'all', 'churn', 'dump', 'faultsim', 'figure10', 'figure11', 'figure9', 'fsck', 'inspect', 'replay', 'table1', 'table2', 'throughput', 'verify' or 'workload'.
  Usage: ptsim [COMMAND] …
  Try 'ptsim --help' for more information.
  [124]

So does an unknown option on a valid subcommand:

  $ ptsim verify --bogus
  ptsim: unknown option '--bogus'.
  Usage: ptsim verify [OPTION]…
  Try 'ptsim verify --help' or 'ptsim --help' for more information.
  [124]

And a malformed option value:

  $ ptsim throughput --domains zero
  ptsim: option '--domains': invalid element in list ('zero'): invalid domain
         count "zero"
  Usage: ptsim throughput [OPTION]…
  Try 'ptsim throughput --help' or 'ptsim --help' for more information.
  [124]

An unknown --locking mode on throughput names the offending token on
stderr and exits 2 — never a silent fallback to a mode that was not
asked for:

  $ ptsim throughput --locking bogus
  unknown locking "bogus" for throughput (have: all, striped, global, seqlock)
  [2]

  $ ptsim throughput --locking bogus 2>/dev/null
  [2]

Nothing of the above may leak to stdout (scripts parse it):

  $ ptsim 2>/dev/null
  [124]
