ptsim must never report success for an invocation it did not run.  A
bare invocation used to print generic usage on stdout and exit 0,
letting typo'd scripts and CI steps sail through green; it is now an
error on stderr with a nonzero exit, like every other malformed
invocation.

Bare invocation:

  $ ptsim
  ptsim: missing subcommand
  Usage: ptsim [COMMAND] …
  Try 'ptsim --help' for more information.
  [124]

An unknown subcommand names the offending token:

  $ ptsim nonsense
  ptsim: unknown command 'nonsense', must be one of 'ablations', 'all', 'chaos', 'churn', 'dump', 'faultsim', 'figure10', 'figure11', 'figure9', 'fleet', 'fsck', 'inspect', 'numa', 'replay', 'report', 'table1', 'table2', 'throughput', 'verify' or 'workload'.
  Usage: ptsim [COMMAND] …
  Try 'ptsim --help' for more information.
  [124]

So does an unknown option on a valid subcommand:

  $ ptsim verify --bogus
  ptsim: unknown option '--bogus'.
  Usage: ptsim verify [OPTION]…
  Try 'ptsim verify --help' or 'ptsim --help' for more information.
  [124]

And a malformed option value:

  $ ptsim throughput --domains zero
  ptsim: option '--domains': invalid element in list ('zero'): invalid domain
         count "zero"
  Usage: ptsim throughput [OPTION]…
  Try 'ptsim throughput --help' or 'ptsim --help' for more information.
  [124]

An unknown --locking mode on throughput names the offending token on
stderr and exits 2 — never a silent fallback to a mode that was not
asked for:

  $ ptsim throughput --locking bogus
  unknown locking "bogus" for throughput (have: all, striped, global, seqlock)
  [2]

  $ ptsim throughput --locking bogus 2>/dev/null
  [2]

Every enum-valued flag on every subcommand follows that contract:

  $ ptsim throughput --org bogus
  unknown org "bogus" for throughput (have: all, clustered, hashed)
  [2]

  $ ptsim figure11 --tlb bogus
  unknown tlb "bogus" for figure11 (have: single, superpage, psb, csb, a, b, c, d)
  [2]

  $ ptsim inspect --org bogus
  unknown org "bogus" for inspect (have: clustered, hashed)
  [2]

  $ ptsim fsck --org bogus
  unknown org "bogus" for fsck (have: clustered, hashed)
  [2]

  $ ptsim faultsim --locking bogus
  unknown locking "bogus" for faultsim (have: striped, global, seqlock)
  [2]

  $ ptsim faultsim --sites torn_write,bogus
  unknown site "bogus" for faultsim (have: alloc_node, alloc_phys, lock_timeout, domain_crash, torn_write, seqlock_stall, replica_write, shard_crash)
  [2]

  $ ptsim numa --mode bogus
  unknown mode "bogus" for numa (have: all, single_home, eager, lazy)
  [2]

  $ ptsim numa --org bogus
  unknown org "bogus" for numa (have: all, clustered, hashed)
  [2]

  $ ptsim numa --locking bogus 2>/dev/null
  [2]

  $ ptsim fleet --mode bogus
  unknown mode "bogus" for fleet (have: all, batched, paged)
  [2]

  $ ptsim fleet --org bogus
  unknown org "bogus" for fleet (have: all, clustered, hashed)
  [2]

  $ ptsim fleet --locking bogus
  unknown locking "bogus" for fleet (have: striped, global, seqlock)
  [2]

The chaos soak's flags follow the same contract — enums, the fault
site list, and its numeric flags (a crash schedule that cannot be
parsed must never degrade into "no planned crashes"):

  $ ptsim chaos --org bogus
  unknown org "bogus" for chaos (have: all, clustered, hashed)
  [2]

  $ ptsim chaos --locking bogus
  unknown locking "bogus" for chaos (have: striped, global, seqlock)
  [2]

  $ ptsim chaos --sites torn_write,bogus
  unknown site "bogus" for chaos (have: alloc_node, alloc_phys, lock_timeout, domain_crash, torn_write, seqlock_stall, replica_write, shard_crash)
  [2]

  $ ptsim chaos --checkpoint-every 0
  invalid checkpoint cadence "0" for chaos (want an integer >= 1)
  [2]

  $ ptsim chaos --checkpoint-every x
  invalid checkpoint cadence "x" for chaos (want an integer >= 1)
  [2]

  $ ptsim chaos --crash-at=12,-3
  invalid crash offset "-3" for chaos (want comma-separated byte offsets >= 0)
  [2]

  $ ptsim chaos --crash-at 12,x 2>/dev/null
  [2]

The shared telemetry flags follow it too, on every subcommand:

  $ ptsim report --metrics-format bogus a.json b.json
  unknown metrics-format "bogus" for report (have: json, openmetrics)
  [2]

  $ ptsim fleet --metrics-format bogus
  unknown metrics-format "bogus" for fleet (have: json, openmetrics)
  [2]

And report refuses unreadable input with the same exit code:

  $ ptsim report missing-baseline.json missing-current.json
  ptsim report: missing-baseline.json: No such file or directory
  [2]

And an unknown fsck corruption kind still names its token:

  $ ptsim fsck --corrupt bogus
  unknown corruption "bogus" for clustered (have: cycle, cross_link, misplace, duplicate, stale, torn, torn_replica, head_tag, count, free_reattach, overlap)
  [2]

Nothing of the above may leak to stdout (scripts parse it):

  $ ptsim 2>/dev/null
  [124]
