(* Bit-field helpers: everything else encodes PTEs through these. *)

open Addr

let check_i64 = Alcotest.(check int64)

let test_mask () =
  check_i64 "mask 0" 0L (Bits.mask 0);
  check_i64 "mask 1" 1L (Bits.mask 1);
  check_i64 "mask 12" 0xFFFL (Bits.mask 12);
  check_i64 "mask 63" Int64.max_int (Bits.mask 63);
  check_i64 "mask 64" (-1L) (Bits.mask 64);
  Alcotest.check_raises "mask 65" (Invalid_argument "Bits.mask") (fun () ->
      ignore (Bits.mask 65))

let test_extract_insert () =
  let w = 0x1234_5678_9ABC_DEF0L in
  check_i64 "extract low nibble" 0x0L (Bits.extract w ~lo:0 ~width:4);
  check_i64 "extract byte" 0xDEL (Bits.extract w ~lo:8 ~width:8);
  check_i64 "extract top bit" 0L (Bits.extract w ~lo:63 ~width:1);
  check_i64 "insert then extract"
    0x2AL
    (Bits.extract (Bits.insert w ~lo:20 ~width:6 0x2AL) ~lo:20 ~width:6);
  (* inserting must not disturb neighbours *)
  let w' = Bits.insert w ~lo:20 ~width:6 0x3FL in
  check_i64 "below field untouched"
    (Bits.extract w ~lo:0 ~width:20)
    (Bits.extract w' ~lo:0 ~width:20);
  check_i64 "above field untouched"
    (Bits.extract w ~lo:26 ~width:38)
    (Bits.extract w' ~lo:26 ~width:38)

let test_single_bits () =
  let w = 0L in
  Alcotest.(check bool) "clear initially" false (Bits.test_bit w 42);
  let w = Bits.set_bit w 42 in
  Alcotest.(check bool) "set" true (Bits.test_bit w 42);
  let w = Bits.clear_bit w 42 in
  Alcotest.(check bool) "cleared" false (Bits.test_bit w 42);
  Alcotest.(check bool) "bit 63 set" true (Bits.test_bit Int64.min_int 63)

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Bits.popcount 0L);
  Alcotest.(check int) "all ones" 64 (Bits.popcount (-1L));
  Alcotest.(check int) "0xFFFF" 16 (Bits.popcount 0xFFFFL);
  Alcotest.(check int) "min_int" 1 (Bits.popcount Int64.min_int)

let test_pow2 () =
  Alcotest.(check bool) "1 is pow2" true (Bits.is_pow2 1);
  Alcotest.(check bool) "4096" true (Bits.is_pow2 4096);
  Alcotest.(check bool) "0" false (Bits.is_pow2 0);
  Alcotest.(check bool) "-8" false (Bits.is_pow2 (-8));
  Alcotest.(check bool) "12" false (Bits.is_pow2 12);
  Alcotest.(check int) "log2 4096" 12 (Bits.log2_exact 4096);
  Alcotest.(check int) "log2 1" 0 (Bits.log2_exact 1);
  Alcotest.check_raises "log2 of non-pow2"
    (Invalid_argument "Bits.log2_exact") (fun () ->
      ignore (Bits.log2_exact 12))

let test_align () =
  check_i64 "down" 0x1000L (Bits.align_down 0x1FFFL 12);
  check_i64 "down already aligned" 0x2000L (Bits.align_down 0x2000L 12);
  check_i64 "up" 0x2000L (Bits.align_up 0x1001L 12);
  check_i64 "up aligned stays" 0x1000L (Bits.align_up 0x1000L 12);
  Alcotest.(check bool) "is_aligned yes" true (Bits.is_aligned 0x4000L 14);
  Alcotest.(check bool) "is_aligned no" false (Bits.is_aligned 0x4001L 14)

(* property: insert w lo width (extract w lo width) = w *)
let prop_insert_extract_id =
  QCheck.Test.make ~name:"insert of own extract is identity" ~count:500
    QCheck.(triple int64 (int_bound 55) (int_bound 8))
    (fun (w, lo, width) ->
      let width = width + 1 in
      let v = Addr.Bits.extract w ~lo ~width in
      Int64.equal (Addr.Bits.insert w ~lo ~width v) w)

let prop_extract_insert_roundtrip =
  QCheck.Test.make ~name:"extract of insert returns value" ~count:500
    QCheck.(quad int64 int64 (int_bound 55) (int_bound 8))
    (fun (w, v, lo, width) ->
      let width = width + 1 in
      let got = Addr.Bits.extract (Addr.Bits.insert w ~lo ~width v) ~lo ~width in
      Int64.equal got (Int64.logand v (Addr.Bits.mask width)))

let prop_popcount_set_bit =
  QCheck.Test.make ~name:"set_bit changes popcount by one" ~count:300
    QCheck.(pair int64 (int_bound 63))
    (fun (w, i) ->
      let before = Addr.Bits.popcount w in
      let after = Addr.Bits.popcount (Addr.Bits.set_bit w i) in
      if Addr.Bits.test_bit w i then before = after else after = before + 1)

let prop_mix64_bijective_sample =
  QCheck.Test.make ~name:"mix64 has no collisions on small ints" ~count:1
    QCheck.unit
    (fun () ->
      let seen = Hashtbl.create 4096 in
      let ok = ref true in
      for i = 0 to 9999 do
        let h = Addr.Bits.mix64 (Int64.of_int i) in
        if Hashtbl.mem seen h then ok := false;
        Hashtbl.replace seen h ()
      done;
      !ok)

let suite =
  ( "bits",
    [
      Alcotest.test_case "mask" `Quick test_mask;
      Alcotest.test_case "extract/insert" `Quick test_extract_insert;
      Alcotest.test_case "single bits" `Quick test_single_bits;
      Alcotest.test_case "popcount" `Quick test_popcount;
      Alcotest.test_case "pow2/log2" `Quick test_pow2;
      Alcotest.test_case "alignment" `Quick test_align;
      QCheck_alcotest.to_alcotest prop_insert_extract_id;
      QCheck_alcotest.to_alcotest prop_extract_insert_roundtrip;
      QCheck_alcotest.to_alcotest prop_popcount_set_bit;
      QCheck_alcotest.to_alcotest prop_mix64_bijective_sample;
    ] )
