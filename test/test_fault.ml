(* Fault injection, fsck, and self-healing.

   Three layers under test: the deterministic fault plan (pure
   decisions, sites that fail exactly where armed), the integrity
   checker and repairer over both organizations (no false negatives
   against the corruption injector, no false positives on healthy
   tables), and the self-healing service (journal rollback, bounded
   retry, degraded-mode aborts, supervised worker restarts) — capped
   by the faultsim soak's domain-count invariance. *)

module CT = Clustered_pt.Table
module HT = Baselines.Hashed_pt
module WP = Exec.Worker_pool
module BL = Clustered_pt.Bucket_lock.Real
module S = Pt_service.Service
module FS = Pt_service.Faultsim

let attr = Pte.Attr.default

(* --- table builders with every representation the checker knows --- *)

let build_clustered () =
  let t =
    CT.create (Clustered_pt.Config.make ~buckets:256 ~subblock_factor:16 ())
  in
  for i = 0 to 199 do
    let r = Addr.Bits.mix64 (Int64.of_int (i + 1)) in
    let vpn = Int64.logand r 0x3FFFL in
    let ppn = Int64.logand (Int64.shift_right_logical r 16) 0xFFFFFL in
    CT.insert_base t ~vpn ~ppn ~attr
  done;
  CT.insert_superpage t ~vpn:0x40000L ~size:Addr.Page_size.kb64 ~ppn:0x1000L
    ~attr;
  CT.insert_superpage t ~vpn:0x80000L ~size:Addr.Page_size.kb256 ~ppn:0x2000L
    ~attr;
  CT.insert_psb t ~vpbn:0x3000L ~vmask:0b101 ~ppn:0x4000L ~attr;
  Fsck.Clustered t

let build_hashed () =
  let t =
    HT.create ~buckets:256 ~subblock_factor:16 ~mode:HT.No_superpages ()
  in
  for i = 0 to 199 do
    let r = Addr.Bits.mix64 (Int64.of_int (i + 1)) in
    let vpn = Int64.logand r 0x3FFFL in
    let ppn = Int64.logand (Int64.shift_right_logical r 16) 0xFFFFFL in
    HT.insert_base t ~vpn ~ppn ~attr
  done;
  Fsck.Hashed t

let builders = [ ("clustered", build_clustered); ("hashed", build_hashed) ]

(* --- the plan: pure decisions, identical on any domain --- *)

let test_plan_pure () =
  let p = Fault.plan ~rate_ppm:300_000 ~seed:99 () in
  let sample () =
    List.concat_map
      (fun site ->
        List.init 64 (fun key ->
            List.init 3 (fun attempt -> Fault.decide p ~site ~key ~attempt)))
      Fault.all_sites
  in
  let here = sample () in
  let there = Domain.join (Domain.spawn sample) in
  Alcotest.(check bool) "same decisions on another domain" true (here = there);
  let armed = List.length (List.filter Fun.id (List.concat here)) in
  Alcotest.(check bool) "rate neither zero nor saturated" true
    (armed > 0 && armed < List.length (List.concat here))

let test_sites_silent_without_context () =
  Fault.with_plan
    (Fault.plan ~rate_ppm:1_000_000 ~seed:1 ())
    (fun () ->
      Fault.clear_context ();
      Alcotest.(check bool) "no context, not armed" false
        (Fault.armed Fault.Alloc_node);
      Fault.set_context ~key:3;
      Alcotest.(check bool) "context set, armed at 100%" true
        (Fault.armed Fault.Alloc_node);
      Fault.clear_context ())

(* every site fails exactly at its documented surface *)
let test_injection_surfaces () =
  Fault.with_plan
    (Fault.plan ~rate_ppm:1_000_000 ~seed:5 ())
    (fun () ->
      Fault.set_context ~key:0;
      let pa = Mem.Phys_alloc.create ~total_pages:64 ~subblock_factor:16 in
      Alcotest.(check bool) "Phys_alloc fails by returning None" true
        (Mem.Phys_alloc.alloc_page pa ~vpn:0L = None);
      let t =
        CT.create
          (Clustered_pt.Config.make ~buckets:64 ~subblock_factor:16 ())
      in
      (match CT.insert_base t ~vpn:1L ~ppn:2L ~attr with
      | () -> Alcotest.fail "expected Injected Alloc_node"
      | exception Fault.Injected { site = Fault.Alloc_node; _ } -> ());
      Alcotest.(check int) "aborted insert left nothing behind" 0
        (CT.population t);
      let l = BL.create ~buckets:8 in
      (match BL.with_write l ~bucket:3 (fun () -> ()) with
      | () -> Alcotest.fail "expected injected Timeout"
      | exception BL.Timeout 3 -> ());
      Alcotest.(check int) "injected timeout held nothing" 0
        (BL.currently_held l);
      Fault.clear_context ())

(* --- fsck: no false positives, no false negatives, repair --- *)

let test_fsck_no_false_positives () =
  List.iter
    (fun (name, build) ->
      let table = build () in
      Alcotest.(check bool)
        (name ^ ": healthy table is clean")
        true
        (Fsck.clean (Fsck.check table)))
    builders

let test_fsck_detects_and_repairs () =
  List.iter
    (fun (name, build) ->
      let kinds = Fsck.corruption_kinds (build ()) in
      Alcotest.(check bool) (name ^ ": kinds nonempty") true (kinds <> []);
      List.iter
        (fun kind ->
          let table = build () in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: injector found a site" name kind)
            true
            (Fsck.corrupt_by_name table kind);
          let report = Fsck.check table in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: corruption detected" name kind)
            false (Fsck.clean report);
          let outcome = Fsck.repair table in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: repair salvaged mappings" name kind)
            true
            (outcome.Fsck.kept > 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: clean after repair" name kind)
            true
            (Fsck.clean (Fsck.check table)))
        kinds)
    builders

(* --- qcheck: an interrupted churn prefix, repaired, equals the
   committed prefix (outside the torn page) --- *)

type op = Ins of int64 * int64 | Rem of int64

let ops_arbitrary =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 80)
        ( int_bound 255 >>= fun v ->
          let vpn = Int64.of_int v in
          frequency
            [
              ( 3,
                map
                  (fun p -> Ins (vpn, Int64.of_int p))
                  (int_bound ((1 lsl 20) - 1)) );
              (1, return (Rem vpn));
            ] ))
  in
  QCheck.make
    QCheck.Gen.(pair gen (int_bound 1_000_000))
    ~print:(fun (ops, cut) ->
      Printf.sprintf "cut=%d [%s]" cut
        (String.concat ";"
           (List.map
              (function
                | Ins (v, p) -> Printf.sprintf "I(%Ld,%Ld)" v p
                | Rem v -> Printf.sprintf "R(%Ld)" v)
              ops)))

let apply_table table op =
  match (table, op) with
  | Fsck.Clustered t, Ins (vpn, ppn) -> CT.insert_base t ~vpn ~ppn ~attr
  | Fsck.Clustered t, Rem vpn -> CT.remove t ~vpn
  | Fsck.Hashed t, Ins (vpn, ppn) -> HT.insert_base t ~vpn ~ppn ~attr
  | Fsck.Hashed t, Rem vpn -> HT.remove t ~vpn

let present table vpn =
  match table with
  | Fsck.Clustered t -> fst (CT.lookup t ~vpn) <> None
  | Fsck.Hashed t -> fst (HT.lookup t ~vpn) <> None

let fresh = function
  | "clustered" ->
      Fsck.Clustered
        (CT.create
           (Clustered_pt.Config.make ~buckets:64 ~subblock_factor:16 ()))
  | _ ->
      Fsck.Hashed
        (HT.create ~buckets:64 ~subblock_factor:16 ~mode:HT.No_superpages ())

let prop_prefix_repair name =
  QCheck.Test.make
    ~name:(name ^ ": interrupted prefix + repair = committed prefix")
    ~count:60 ops_arbitrary
    (fun (ops, cut_raw) ->
      let ops = Array.of_list ops in
      let cut = cut_raw mod Array.length ops in
      (* the op being interrupted: a write torn at [torn_vpn] *)
      let torn_vpn =
        match ops.(cut) with Ins (v, _) | Rem v -> v
      in
      let interrupted = fresh name in
      for i = 0 to cut - 1 do
        apply_table interrupted ops.(i)
      done;
      let committed = fresh name in
      for i = 0 to cut - 1 do
        apply_table committed ops.(i)
      done;
      (match interrupted with
      | Fsck.Clustered t -> ignore (CT.corrupt t (CT.C_torn torn_vpn))
      | Fsck.Hashed t -> ignore (HT.corrupt t (HT.C_torn torn_vpn)));
      let _ = Fsck.repair interrupted in
      if not (Fsck.clean (Fsck.check interrupted)) then
        QCheck.Test.fail_report "not clean after repair";
      (* every page outside the torn one matches the committed prefix;
         the torn page itself may survive or be dropped, never garbage *)
      let ok = ref true in
      for v = 0 to 255 do
        let vpn = Int64.of_int v in
        if vpn <> torn_vpn && present interrupted vpn <> present committed vpn
        then ok := false
      done;
      if not !ok then QCheck.Test.fail_report "prefix mismatch off the torn page";
      (if present interrupted torn_vpn && not (present committed torn_vpn) then
         QCheck.Test.fail_report "torn page resurrected from nowhere");
      true)

(* --- worker pool: complete failure lists and supervised restarts --- *)

let test_pool_reports_both_plain_failures () =
  WP.with_pool ~domains:4 (fun pool ->
      match
        WP.run pool (fun i ->
            if i = 1 then failwith "a" else if i = 3 then failwith "b")
      with
      | () -> Alcotest.fail "expected Worker_failed"
      | exception WP.Worker_failed [ (1, Failure a); (3, Failure b) ] ->
          Alcotest.(check (pair string string))
            "both failures, sorted by index" ("a", "b") (a, b)
      | exception e -> raise e)

let test_pool_two_simultaneous_crashes_both_report () =
  Fault.with_plan
    (Fault.plan ~rate_ppm:1_000_000 ~sites:[ Fault.Domain_crash ] ~seed:3 ())
    (fun () ->
      WP.with_pool ~domains:4 (fun pool ->
          (match
             WP.run pool (fun i ->
                 if i < 2 then begin
                   Fault.set_context ~key:i;
                   Fault.fire Fault.Domain_crash
                 end)
           with
          | () -> Alcotest.fail "expected Worker_failed"
          | exception
              WP.Worker_failed
                [
                  (0, Fault.Injected { site = Fault.Domain_crash; key = 0 });
                  (1, Fault.Injected { site = Fault.Domain_crash; key = 1 });
                ] ->
              ()
          | exception e -> raise e);
          Alcotest.(check int) "both domains respawned" 2 (WP.restarts pool);
          (* the pool is back at full strength *)
          let ok = Array.make 4 false in
          WP.run pool (fun i -> ok.(i) <- true);
          Alcotest.(check bool) "post-crash job ran on all workers" true
            (Array.for_all Fun.id ok)))

(* --- bounded/try lock variants and writer starvation --- *)

let test_try_and_bounded_locks () =
  let l = BL.create ~buckets:4 in
  BL.with_read l ~bucket:0 (fun () ->
      Alcotest.(check bool) "try_with_write defers to a held reader" true
        (BL.try_with_write l ~bucket:0 (fun () -> ()) = None);
      (match BL.with_write_bounded l ~bucket:0 ~attempts:3 (fun () -> ()) with
      | () -> Alcotest.fail "bounded writer must time out under a reader"
      | exception BL.Timeout 0 -> ());
      Alcotest.(check bool) "read lock still held after failed writes" true
        (BL.currently_held l = 1));
  Alcotest.(check int) "all released" 0 (BL.currently_held l);
  Alcotest.(check bool) "try_with_write acquires a free slot" true
    (BL.try_with_write l ~bucket:0 (fun () -> 42) = Some 42);
  Alcotest.(check bool) "try_with_read acquires a free slot" true
    (BL.try_with_read l ~bucket:1 (fun () -> 7) = Some 7)

(* regression: a bounded writer must not starve under a steady stream
   of new readers — its waiting flag gates them out (the attempt clock
   makes the test deterministic: failure = Timeout, not a hang) *)
let test_bounded_writer_not_starved () =
  let l = BL.create ~buckets:1 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          BL.with_read l ~bucket:0 (fun () -> incr n);
          Domain.cpu_relax ()
        done;
        !n)
  in
  let acquired =
    match BL.with_write_bounded l ~bucket:0 ~attempts:5_000_000 (fun () -> true)
    with
    | ok -> ok
    | exception BL.Timeout _ -> false
  in
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check bool)
    (Printf.sprintf "writer acquired despite %d reader passes" reads)
    true acquired

(* --- the self-healing service --- *)

let heal_setup ~org ~locking =
  let svc = S.create ~buckets:64 ~org ~locking () in
  for i = 0 to 63 do
    S.insert svc ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int (1000 + i)) ~attr
  done;
  svc

let test_service_heals_torn_write () =
  List.iter
    (fun org ->
      let svc = heal_setup ~org ~locking:S.Striped in
      Obs.Ambient.reset ();
      Fault.with_plan
        (Fault.plan ~rate_ppm:1_000_000 ~sites:[ Fault.Torn_write ] ~seed:7 ())
        (fun () ->
          Fault.set_context ~key:0;
          (* every attempt tears; the journal rolls each one back and
             the op aborts into degraded mode *)
          S.insert svc ~vpn:500L ~ppn:9L ~attr;
          Fault.clear_context ();
          Alcotest.(check int) "tore once per attempt" S.heal_attempts
            (Fault.injected Fault.Torn_write);
          Alcotest.(check int) "one abort" 1 (Fault.aborts ());
          Alcotest.(check int) "retried between attempts"
            (S.heal_attempts - 1) (Fault.retries ()));
      Alcotest.(check bool) "aborted op not applied" false
        (S.lookup svc ~vpn:500L);
      Alcotest.(check bool) "prior mappings intact" true (S.lookup svc ~vpn:5L);
      Alcotest.(check bool) "table fsck-clean after rollbacks" true
        (Fsck.clean (S.fsck svc));
      Alcotest.(check int) "no lock leaked" 0
        (S.lock_stats svc).S.currently_held;
      let merged = Obs.Ambient.merged () in
      Alcotest.(check bool) "fault.* counters mirrored" true
        (Obs.Metrics.value (Obs.Metrics.counter merged "fault.aborts") >= 1
        && Obs.Metrics.value (Obs.Metrics.counter merged "fault.retries")
           >= S.heal_attempts - 1))
    [ S.Clustered; S.Hashed ]

(* the PR's bugfix sweep: exceptions inside locked sections must not
   leak the stripe or the global mutex, for every write entry point *)
let test_service_no_lock_leak_on_fault () =
  List.iter
    (fun locking ->
      let svc = heal_setup ~org:S.Clustered ~locking in
      Fault.with_plan
        (Fault.plan ~rate_ppm:1_000_000
           ~sites:[ Fault.Alloc_node; Fault.Torn_write ]
           ~seed:13 ())
        (fun () ->
          Fault.set_context ~key:1;
          S.insert svc ~vpn:700L ~ppn:1L ~attr;
          S.remove svc ~vpn:3L;
          ignore
            (S.protect svc
               (Addr.Region.make ~first_vpn:0L ~pages:40)
               ~writable:false);
          Fault.clear_context ());
      Alcotest.(check int)
        (S.locking_name locking ^ ": nothing held after faulted ops")
        0 (S.lock_stats svc).S.currently_held;
      (* and the service still works *)
      S.insert svc ~vpn:800L ~ppn:2L ~attr;
      Alcotest.(check bool) "post-fault insert lands" true
        (S.lookup svc ~vpn:800L);
      Alcotest.(check bool) "still fsck-clean" true (Fsck.clean (S.fsck svc)))
    [ S.Striped; S.Global ]

(* --- the soak: thousands of faults, any domain count, same outcome --- *)

let test_faultsim_invariance () =
  let cfg =
    {
      FS.default_config with
      FS.seed = 11;
      rate_ppm = 200_000;
      streams = 4;
      ops = 500;
      buckets = 128;
    }
  in
  let o1 = FS.run { cfg with FS.domains = 1 } in
  let o4 = FS.run { cfg with FS.domains = 4 } in
  Alcotest.(check string) "byte-identical JSON for 1 vs 4 domains"
    (FS.outcome_to_json o1) (FS.outcome_to_json o4);
  Alcotest.(check bool) "ends fsck-clean" true o1.FS.fsck_clean;
  let injected = List.fold_left (fun a (_, n) -> a + n) 0 o1.FS.injected in
  Alcotest.(check bool)
    (Printf.sprintf "soak injected plenty (%d)" injected)
    true (injected > 500);
  let distinct =
    List.length (List.filter (fun (_, n) -> n > 0) o1.FS.injected)
  in
  Alcotest.(check bool)
    (Printf.sprintf "several distinct fault kinds (%d)" distinct)
    true (distinct >= 4);
  Alcotest.(check bool) "crashes were supervised back" true
    (o1.FS.crashes > 0 && o1.FS.restarts = o1.FS.crashes)

(* the same invariance must hold on the lock-free read path, with the
   seqlock's own stall site armed: stalls park a writer mid-update
   (sequence odd) so concurrent readers spin and retry, yet the
   committed outcome is a pure function of the plan *)
let test_faultsim_seqlock_invariance () =
  let cfg =
    {
      FS.default_config with
      FS.seed = 23;
      rate_ppm = 200_000;
      locking = Pt_service.Service.Seqlock;
      streams = 4;
      ops = 500;
      buckets = 128;
    }
  in
  let o1 = FS.run { cfg with FS.domains = 1 } in
  let o4 = FS.run { cfg with FS.domains = 4 } in
  Alcotest.(check string) "byte-identical JSON for 1 vs 4 domains"
    (FS.outcome_to_json o1) (FS.outcome_to_json o4);
  Alcotest.(check bool) "ends fsck-clean" true o1.FS.fsck_clean;
  Alcotest.(check bool) "seqlock stalls were injected" true
    (List.assoc "seqlock_stall" o1.FS.injected > 0);
  Alcotest.(check bool) "crashes were supervised back" true
    (o1.FS.crashes > 0 && o1.FS.restarts = o1.FS.crashes)

let suite =
  ( "fault",
    [
      Alcotest.test_case "plan decisions are pure" `Quick test_plan_pure;
      Alcotest.test_case "sites silent without context" `Quick
        test_sites_silent_without_context;
      Alcotest.test_case "injection surfaces" `Quick test_injection_surfaces;
      Alcotest.test_case "fsck: no false positives" `Quick
        test_fsck_no_false_positives;
      Alcotest.test_case "fsck: detects and repairs every corruption" `Quick
        test_fsck_detects_and_repairs;
      QCheck_alcotest.to_alcotest (prop_prefix_repair "clustered");
      QCheck_alcotest.to_alcotest (prop_prefix_repair "hashed");
      Alcotest.test_case "pool reports every plain failure" `Quick
        test_pool_reports_both_plain_failures;
      Alcotest.test_case "two simultaneous crashes both report" `Quick
        test_pool_two_simultaneous_crashes_both_report;
      Alcotest.test_case "try/bounded lock variants" `Quick
        test_try_and_bounded_locks;
      Alcotest.test_case "bounded writer not starved by readers" `Quick
        test_bounded_writer_not_starved;
      Alcotest.test_case "service heals torn writes" `Quick
        test_service_heals_torn_write;
      Alcotest.test_case "no lock leak on faulted ops" `Quick
        test_service_no_lock_leak_on_fault;
      Alcotest.test_case "faultsim domain-count invariance" `Slow
        test_faultsim_invariance;
      Alcotest.test_case "faultsim seqlock domain-count invariance" `Slow
        test_faultsim_seqlock_invariance;
    ] )
