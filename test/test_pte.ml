(* PTE word formats: bit-exact encode/decode of Figures 1, 6 and 7. *)

let attr_gen =
  QCheck.Gen.(
    map
      (fun (bits, soft) ->
        let b i = bits land (1 lsl i) <> 0 in
        {
          Pte.Attr.referenced = b 0;
          modified = b 1;
          writable = b 2;
          executable = b 3;
          user = b 4;
          cacheable = b 5;
          global = b 6;
          locked = b 7;
          soft;
        })
      (pair (int_bound 255) (int_bound 15)))

let arbitrary_attr = QCheck.make attr_gen

let test_attr_roundtrip_known () =
  List.iter
    (fun attr ->
      let got = Pte.Attr.of_bits (Pte.Attr.to_bits attr) in
      Alcotest.(check bool) "attr roundtrip" true (Pte.Attr.equal attr got))
    [ Pte.Attr.default; Pte.Attr.kernel_text; Pte.Attr.kernel_data ]

let prop_attr_roundtrip =
  QCheck.Test.make ~name:"attr encode/decode roundtrip" ~count:500
    arbitrary_attr (fun attr ->
      Pte.Attr.equal attr (Pte.Attr.of_bits (Pte.Attr.to_bits attr)))

let test_attr_width () =
  (* everything fits the 12-bit field of Figure 1 *)
  Alcotest.(check bool) "kernel_text fits 12 bits" true
    (Int64.unsigned_compare
       (Pte.Attr.to_bits Pte.Attr.kernel_text)
       (Addr.Bits.mask 12)
    <= 0)

let test_base_pte_layout () =
  let attr = Pte.Attr.default in
  let pte = Pte.Base_pte.make ~ppn:0xABCDE12L ~attr () in
  let w = Pte.Base_pte.encode pte in
  (* Figure 1: V at bit 63, PPN at 39..12, ATTR at 11..0 *)
  Alcotest.(check bool) "V bit" true (Addr.Bits.test_bit w 63);
  Alcotest.(check int64) "PPN field" 0xABCDE12L
    (Addr.Bits.extract w ~lo:12 ~width:28);
  Alcotest.(check int64) "ATTR field" (Pte.Attr.to_bits attr)
    (Addr.Bits.extract w ~lo:0 ~width:12);
  Alcotest.(check bool) "S = base" true
    (Pte.Layout.read_s w = Pte.Layout.S_base)

let test_base_pte_validation () =
  Alcotest.check_raises "PPN too wide"
    (Invalid_argument "Base_pte: PPN exceeds 28 bits") (fun () ->
      ignore (Pte.Base_pte.make ~ppn:0x10000000L ~attr:Pte.Attr.default ()))

let test_superpage_layout () =
  let pte =
    Pte.Superpage_pte.make ~size:Addr.Page_size.kb64 ~ppn:0x123450L
      ~attr:Pte.Attr.default ()
  in
  let w = Pte.Superpage_pte.encode pte in
  Alcotest.(check int64) "SZ field = 4 (64KB)" 4L
    (Addr.Bits.extract w ~lo:59 ~width:4);
  Alcotest.(check bool) "S = superpage" true
    (Pte.Layout.read_s w = Pte.Layout.S_superpage)

let test_superpage_alignment () =
  Alcotest.check_raises "unaligned superpage PPN"
    (Invalid_argument "Superpage_pte: PPN not aligned to superpage size")
    (fun () ->
      ignore
        (Pte.Superpage_pte.make ~size:Addr.Page_size.kb64 ~ppn:0x123451L
           ~attr:Pte.Attr.default ()))

let test_superpage_covers () =
  let sp =
    Pte.Superpage_pte.make ~size:Addr.Page_size.kb64 ~ppn:0x40000L
      ~attr:Pte.Attr.default ()
  in
  Alcotest.(check bool) "covers first" true
    (Pte.Superpage_pte.covers sp ~vpn_base:0x100L ~vpn:0x100L);
  Alcotest.(check bool) "covers last" true
    (Pte.Superpage_pte.covers sp ~vpn_base:0x100L ~vpn:0x10FL);
  Alcotest.(check bool) "beyond" false
    (Pte.Superpage_pte.covers sp ~vpn_base:0x100L ~vpn:0x110L);
  Alcotest.(check int64) "ppn offset" 0x40007L
    (Pte.Superpage_pte.ppn_for sp ~vpn_base:0x100L ~vpn:0x107L)

let test_psb_layout () =
  let p = Pte.Psb_pte.make ~vmask:0xBEEF ~ppn:0x7FF0L ~attr:Pte.Attr.default in
  let w = Pte.Psb_pte.encode p in
  Alcotest.(check int64) "vmask at 63..48" 0xBEEFL
    (Addr.Bits.extract w ~lo:48 ~width:16);
  Alcotest.(check bool) "S = psb" true
    (Pte.Layout.read_s w = Pte.Layout.S_partial_subblock);
  Alcotest.(check bool) "valid_at bit0" true (Pte.Psb_pte.valid_at p ~boff:0);
  Alcotest.(check bool) "valid_at bit4" false (Pte.Psb_pte.valid_at p ~boff:4);
  Alcotest.(check int64) "ppn_for" 0x7FF3L (Pte.Psb_pte.ppn_for p ~boff:3);
  Alcotest.(check int) "population" 13 (Pte.Psb_pte.population p)

let test_psb_validation () =
  Alcotest.check_raises "psb PPN must be block aligned"
    (Invalid_argument "Psb_pte: PPN not block-aligned") (fun () ->
      ignore (Pte.Psb_pte.make ~vmask:1 ~ppn:0x7FF1L ~attr:Pte.Attr.default))

let test_psb_bits () =
  let p = Pte.Psb_pte.make ~vmask:0 ~ppn:0x100L ~attr:Pte.Attr.default in
  let p = Pte.Psb_pte.set_valid p ~boff:7 in
  Alcotest.(check bool) "set" true (Pte.Psb_pte.valid_at p ~boff:7);
  let p = Pte.Psb_pte.clear_valid p ~boff:7 in
  Alcotest.(check int) "cleared" 0 p.Pte.Psb_pte.vmask;
  let full = Pte.Psb_pte.make ~vmask:0xFF ~ppn:0x100L ~attr:Pte.Attr.default in
  Alcotest.(check bool) "full at factor 8" true
    (Pte.Psb_pte.is_full ~subblock_factor:8 full);
  Alcotest.(check bool) "not full at factor 16" false
    (Pte.Psb_pte.is_full ~subblock_factor:16 full)

let prop_word_roundtrip =
  let gen =
    QCheck.Gen.(
      attr_gen >>= fun attr ->
      int_bound 2 >>= fun kind ->
      match kind with
      | 0 ->
          map
            (fun ppn ->
              Pte.Word.Base
                (Pte.Base_pte.make ~ppn:(Int64.of_int ppn) ~attr ()))
            (int_bound ((1 lsl 28) - 1))
      | 1 ->
          map2
            (fun sz ppn_blocks ->
              let size = Addr.Page_size.of_sz_code sz in
              let ppn = Int64.shift_left (Int64.of_int ppn_blocks) sz in
              Pte.Word.Superpage (Pte.Superpage_pte.make ~size ~ppn ~attr ()))
            (int_bound 12)
            (int_bound 0xFFF)
      | _ ->
          map2
            (fun vmask blocks ->
              let ppn = Int64.shift_left (Int64.of_int blocks) 4 in
              Pte.Word.Psb (Pte.Psb_pte.make ~vmask ~ppn ~attr))
            (int_bound 0xFFFF)
            (int_bound 0xFFFFFF))
  in
  QCheck.Test.make ~name:"word encode/decode roundtrip (all formats)"
    ~count:1000 (QCheck.make gen) (fun word ->
      Pte.Word.equal word (Pte.Word.decode (Pte.Word.encode word)))

let test_word_classification () =
  let base =
    Pte.Word.Base (Pte.Base_pte.make ~ppn:5L ~attr:Pte.Attr.default ())
  in
  let sp =
    Pte.Word.Superpage
      (Pte.Superpage_pte.make ~size:Addr.Page_size.kb16 ~ppn:4L
         ~attr:Pte.Attr.default ())
  in
  let psb =
    Pte.Word.Psb (Pte.Psb_pte.make ~vmask:3 ~ppn:16L ~attr:Pte.Attr.default)
  in
  let s w = Pte.Layout.read_s (Pte.Word.encode w) in
  Alcotest.(check bool) "base" true (s base = Pte.Layout.S_base);
  Alcotest.(check bool) "sp" true (s sp = Pte.Layout.S_superpage);
  Alcotest.(check bool) "psb" true (s psb = Pte.Layout.S_partial_subblock)

let test_word_is_valid () =
  Alcotest.(check bool) "invalid base" false
    (Pte.Word.is_valid (Pte.Word.Base Pte.Base_pte.invalid));
  Alcotest.(check bool) "empty psb" false
    (Pte.Word.is_valid
       (Pte.Word.Psb (Pte.Psb_pte.make ~vmask:0 ~ppn:0L ~attr:Pte.Attr.default)))

let suite =
  ( "pte",
    [
      Alcotest.test_case "attr roundtrip (known)" `Quick test_attr_roundtrip_known;
      Alcotest.test_case "attr width" `Quick test_attr_width;
      QCheck_alcotest.to_alcotest prop_attr_roundtrip;
      Alcotest.test_case "base PTE layout" `Quick test_base_pte_layout;
      Alcotest.test_case "base PTE validation" `Quick test_base_pte_validation;
      Alcotest.test_case "superpage layout" `Quick test_superpage_layout;
      Alcotest.test_case "superpage alignment" `Quick test_superpage_alignment;
      Alcotest.test_case "superpage covers" `Quick test_superpage_covers;
      Alcotest.test_case "psb layout" `Quick test_psb_layout;
      Alcotest.test_case "psb validation" `Quick test_psb_validation;
      Alcotest.test_case "psb bits" `Quick test_psb_bits;
      QCheck_alcotest.to_alcotest prop_word_roundtrip;
      Alcotest.test_case "word classification" `Quick test_word_classification;
      Alcotest.test_case "word validity" `Quick test_word_is_valid;
    ] )

let test_reserved_s_code_raises () =
  (* a corrupted word with the reserved S code must be caught loudly,
     not mistranslated *)
  let corrupt = Addr.Bits.insert 0L ~lo:Pte.Layout.s_lo ~width:2 3L in
  Alcotest.check_raises "reserved S code"
    (Invalid_argument "Layout.s_class_of_code") (fun () ->
      ignore (Pte.Word.decode corrupt))

let prop_decode_total_on_valid_s =
  (* any word whose S field is one of the three defined codes decodes
     without raising *)
  QCheck.Test.make ~name:"decode total for defined S codes" ~count:1000
    QCheck.(pair int64 (int_bound 2))
    (fun (w, s) ->
      let w = Addr.Bits.insert w ~lo:Pte.Layout.s_lo ~width:2 (Int64.of_int s) in
      let w =
        (* a superpage word also needs a representable SZ code *)
        if s = 2 then Addr.Bits.insert w ~lo:Pte.Layout.sz_lo ~width:4 3L else w
      in
      ignore (Pte.Word.decode w);
      true)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "reserved S code raises" `Quick
          test_reserved_s_code_raises;
        QCheck_alcotest.to_alcotest prop_decode_total_on_valid_s;
      ] )
