(* TLB models: conventional, superpage, partial-subblock,
   complete-subblock (with prefetch). *)

module Types = Pt_common.Types

let attr = Pte.Attr.default

let base_tr vpn ppn = Types.base_translation ~vpn ~ppn ~attr

let sp_tr ~vpn ~vpn_base ~ppn_base size =
  {
    Types.vpn;
    ppn = Int64.add ppn_base (Int64.sub vpn vpn_base);
    vpn_base;
    ppn_base;
    kind = Types.Superpage size;
    attr;
  }

let psb_tr ~vpn ~vmask ~ppn_base =
  let boff = Int64.to_int (Int64.rem vpn 16L) in
  {
    Types.vpn;
    ppn = Int64.add ppn_base (Int64.of_int boff);
    vpn_base = Int64.mul (Int64.div vpn 16L) 16L;
    ppn_base;
    kind = Types.Partial_subblock vmask;
    attr;
  }

(* --- conventional fully-associative TLB --- *)

let test_fa_hit_miss () =
  let t = Tlb.Fa_tlb.create ~entries:4 () in
  Alcotest.(check bool) "cold miss" true (Tlb.Fa_tlb.access t ~vpn:1L = `Block_miss);
  Tlb.Fa_tlb.fill t (base_tr 1L 100L);
  Alcotest.(check bool) "hit after fill" true (Tlb.Fa_tlb.access t ~vpn:1L = `Hit);
  Alcotest.(check bool) "other page misses" true
    (Tlb.Fa_tlb.access t ~vpn:2L = `Block_miss)

let test_fa_lru_eviction () =
  let t = Tlb.Fa_tlb.create ~entries:2 () in
  ignore (Tlb.Fa_tlb.access t ~vpn:1L);
  Tlb.Fa_tlb.fill t (base_tr 1L 100L);
  ignore (Tlb.Fa_tlb.access t ~vpn:2L);
  Tlb.Fa_tlb.fill t (base_tr 2L 200L);
  (* touch 1 so 2 becomes LRU *)
  ignore (Tlb.Fa_tlb.access t ~vpn:1L);
  ignore (Tlb.Fa_tlb.access t ~vpn:3L);
  Tlb.Fa_tlb.fill t (base_tr 3L 300L);
  Alcotest.(check bool) "1 survived" true (Tlb.Fa_tlb.access t ~vpn:1L = `Hit);
  Alcotest.(check bool) "2 evicted" true
    (Tlb.Fa_tlb.access t ~vpn:2L = `Block_miss);
  Alcotest.(check int) "one eviction" 1
    (Tlb.Fa_tlb.stats t).Tlb.Stats.evictions

let test_fa_ignores_wide_kinds () =
  (* a single-page-size TLB loads only the faulting base page even
     from a superpage translation *)
  let t = Tlb.Fa_tlb.create ~entries:4 () in
  Tlb.Fa_tlb.fill t (sp_tr ~vpn:0x12L ~vpn_base:0x10L ~ppn_base:0x100L
                       Addr.Page_size.kb64);
  Alcotest.(check bool) "filled page hits" true
    (Tlb.Fa_tlb.access t ~vpn:0x12L = `Hit);
  Alcotest.(check bool) "neighbour misses" true
    (Tlb.Fa_tlb.access t ~vpn:0x13L = `Block_miss)

let test_fa_flush () =
  let t = Tlb.Fa_tlb.create () in
  Tlb.Fa_tlb.fill t (base_tr 1L 2L);
  Tlb.Fa_tlb.flush t;
  Alcotest.(check bool) "flushed" true (Tlb.Fa_tlb.access t ~vpn:1L = `Block_miss)

(* --- superpage TLB --- *)

let test_sp_coverage () =
  let t = Tlb.Superpage_tlb.create ~entries:4 () in
  Tlb.Superpage_tlb.fill t
    (sp_tr ~vpn:0x12L ~vpn_base:0x10L ~ppn_base:0x200L Addr.Page_size.kb64);
  (* one entry covers all sixteen pages of the superpage *)
  for i = 0 to 15 do
    Alcotest.(check bool) "covered" true
      (Tlb.Superpage_tlb.access t ~vpn:(Int64.of_int (0x10 + i)) = `Hit)
  done;
  Alcotest.(check bool) "outside" true
    (Tlb.Superpage_tlb.access t ~vpn:0x20L = `Block_miss)

let test_sp_base_entries_one_page () =
  let t = Tlb.Superpage_tlb.create ~entries:4 () in
  Tlb.Superpage_tlb.fill t (base_tr 7L 70L);
  Alcotest.(check bool) "filled hits" true (Tlb.Superpage_tlb.access t ~vpn:7L = `Hit);
  Alcotest.(check bool) "next page misses" true
    (Tlb.Superpage_tlb.access t ~vpn:8L = `Block_miss)

let test_sp_miss_reduction_on_sweep () =
  (* the reason superpages exist: sweeping 256 pages misses 256 times
     with 4 KB entries but 16 times with 64 KB entries *)
  let conventional = Tlb.Fa_tlb.create ~entries:64 () in
  let sp = Tlb.Superpage_tlb.create ~entries:64 () in
  for i = 0 to 255 do
    let vpn = Int64.of_int i in
    (match Tlb.Fa_tlb.access conventional ~vpn with
    | `Hit -> ()
    | _ -> Tlb.Fa_tlb.fill conventional (base_tr vpn vpn));
    match Tlb.Superpage_tlb.access sp ~vpn with
    | `Hit -> ()
    | _ ->
        let vpn_base = Addr.Bits.align_down vpn 4 in
        Tlb.Superpage_tlb.fill sp
          (sp_tr ~vpn ~vpn_base ~ppn_base:vpn_base Addr.Page_size.kb64)
  done;
  Alcotest.(check int) "conventional misses" 256
    (Tlb.Stats.misses (Tlb.Fa_tlb.stats conventional));
  Alcotest.(check int) "superpage misses (16x fewer)" 16
    (Tlb.Stats.misses (Tlb.Superpage_tlb.stats sp))

(* --- partial-subblock TLB --- *)

let test_psb_merge_properly_placed () =
  let t = Tlb.Psb_tlb.create ~entries:4 () in
  (* base pages with frames at matching offsets merge into one entry *)
  Tlb.Psb_tlb.fill t (base_tr 0x10L 0x110L);
  Tlb.Psb_tlb.fill t (base_tr 0x13L 0x113L);
  Alcotest.(check bool) "first hits" true (Tlb.Psb_tlb.access t ~vpn:0x10L = `Hit);
  Alcotest.(check bool) "second hits" true (Tlb.Psb_tlb.access t ~vpn:0x13L = `Hit);
  Alcotest.(check bool) "unfilled offset misses as subblock" true
    (Tlb.Psb_tlb.access t ~vpn:0x14L = `Subblock_miss)

let test_psb_improper_placement_extra_entry () =
  let t = Tlb.Psb_tlb.create ~entries:2 () in
  Tlb.Psb_tlb.fill t (base_tr 0x10L 0x110L);
  (* frame at wrong offset: cannot merge, consumes its own entry *)
  Tlb.Psb_tlb.fill t (base_tr 0x13L 0x999L);
  Alcotest.(check bool) "both resident" true
    (Tlb.Psb_tlb.access t ~vpn:0x10L = `Hit
    && Tlb.Psb_tlb.access t ~vpn:0x13L = `Hit);
  (* a third incompatible fill in the same block evicts (2-entry TLB) *)
  Tlb.Psb_tlb.fill t (base_tr 0x15L 0x777L);
  Alcotest.(check int) "eviction happened" 1
    (Tlb.Psb_tlb.stats t).Tlb.Stats.evictions

let test_psb_fill_psb_translation () =
  let t = Tlb.Psb_tlb.create ~entries:4 () in
  Tlb.Psb_tlb.fill t (psb_tr ~vpn:0x25L ~vmask:0b1100100 ~ppn_base:0x400L);
  Alcotest.(check bool) "bit 2 valid" true (Tlb.Psb_tlb.access t ~vpn:0x22L = `Hit);
  Alcotest.(check bool) "bit 5 valid" true (Tlb.Psb_tlb.access t ~vpn:0x25L = `Hit);
  Alcotest.(check bool) "bit 0 invalid" true
    (Tlb.Psb_tlb.access t ~vpn:0x20L = `Subblock_miss)

(* --- complete-subblock TLB --- *)

let test_csb_miss_classes () =
  let t = Tlb.Csb_tlb.create ~entries:4 () in
  Alcotest.(check bool) "block miss first" true
    (Tlb.Csb_tlb.access t ~vpn:0x10L = `Block_miss);
  Tlb.Csb_tlb.fill t (base_tr 0x10L 0x999L);
  Alcotest.(check bool) "same block other page: subblock miss" true
    (Tlb.Csb_tlb.access t ~vpn:0x1FL = `Subblock_miss);
  Tlb.Csb_tlb.fill t (base_tr 0x1FL 0x123L);
  Alcotest.(check bool) "now hits" true (Tlb.Csb_tlb.access t ~vpn:0x1FL = `Hit);
  let stats = Tlb.Csb_tlb.stats t in
  Alcotest.(check int) "one block miss" 1 stats.Tlb.Stats.block_misses;
  Alcotest.(check int) "one subblock miss" 1 stats.Tlb.Stats.subblock_misses

let test_csb_arbitrary_frames () =
  (* unlike partial-subblocking, complete subblocks take any frames *)
  let t = Tlb.Csb_tlb.create ~entries:4 () in
  Tlb.Csb_tlb.fill t (base_tr 0x10L 0x7L);
  Tlb.Csb_tlb.fill t (base_tr 0x11L 0x1000L);
  Alcotest.(check bool) "both hit one entry" true
    (Tlb.Csb_tlb.access t ~vpn:0x10L = `Hit
    && Tlb.Csb_tlb.access t ~vpn:0x11L = `Hit);
  (* still a single tag: no eviction, entries=4 holds 1 *)
  Alcotest.(check int) "no evictions" 0
    (Tlb.Csb_tlb.stats t).Tlb.Stats.evictions

let test_csb_prefetch_eliminates_subblock_misses () =
  (* Section 4.4: loading all of a tag's mappings on the block miss
     removes all subblock misses for a sweep *)
  let sweep prefetch =
    let t = Tlb.Csb_tlb.create ~entries:64 () in
    for i = 0 to 255 do
      let vpn = Int64.of_int i in
      match Tlb.Csb_tlb.access t ~vpn with
      | `Hit -> ()
      | `Block_miss when prefetch ->
          let block = Int64.mul (Int64.div vpn 16L) 16L in
          Tlb.Csb_tlb.fill_block t
            (List.init 16 (fun j ->
                 let p = Int64.add block (Int64.of_int j) in
                 (j, base_tr p p)))
      | `Block_miss | `Subblock_miss -> Tlb.Csb_tlb.fill t (base_tr vpn vpn)
    done;
    Tlb.Csb_tlb.stats t
  in
  let without = sweep false in
  let with_p = sweep true in
  Alcotest.(check int) "no prefetch: a miss per page" 256
    (Tlb.Stats.misses without);
  Alcotest.(check int) "prefetch: a miss per block" 16
    (Tlb.Stats.misses with_p);
  Alcotest.(check int) "prefetch leaves no subblock misses" 0
    with_p.Tlb.Stats.subblock_misses

let test_csb_fill_psb_and_sp () =
  let t = Tlb.Csb_tlb.create ~entries:4 () in
  Tlb.Csb_tlb.fill t (psb_tr ~vpn:0x31L ~vmask:0b11 ~ppn_base:0x100L);
  Alcotest.(check bool) "psb bit 0" true (Tlb.Csb_tlb.access t ~vpn:0x30L = `Hit);
  Tlb.Csb_tlb.fill t
    (sp_tr ~vpn:0x42L ~vpn_base:0x40L ~ppn_base:0x200L Addr.Page_size.kb64);
  Alcotest.(check bool) "superpage fills all slots" true
    (Tlb.Csb_tlb.access t ~vpn:0x4FL = `Hit)

(* --- the shared associative store --- *)

let test_assoc_store () =
  let s = Tlb.Assoc.create ~entries:3 () in
  Alcotest.(check int) "empty" 0 (Tlb.Assoc.occupied s);
  ignore (Tlb.Assoc.insert s 1);
  ignore (Tlb.Assoc.insert s 2);
  Alcotest.(check (option int)) "find" (Some 2)
    (Tlb.Assoc.find s ~f:(fun e -> e = 2));
  ignore (Tlb.Assoc.insert s 3);
  (* 1 is LRU *)
  Alcotest.(check (option int)) "evicts LRU" (Some 1) (Tlb.Assoc.insert s 4);
  Tlb.Assoc.flush s;
  Alcotest.(check int) "flushed" 0 (Tlb.Assoc.occupied s)

let prop_fa_never_exceeds_capacity =
  QCheck.Test.make ~name:"TLB occupancy never exceeds capacity" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_bound 50))
    (fun vpns ->
      let t = Tlb.Fa_tlb.create ~entries:8 () in
      List.iter
        (fun v ->
          let vpn = Int64.of_int v in
          match Tlb.Fa_tlb.access t ~vpn with
          | `Hit -> ()
          | _ -> Tlb.Fa_tlb.fill t (base_tr vpn vpn))
        vpns;
      (* re-access: at most 8 distinct pages can hit without a fill *)
      let hits = ref 0 in
      List.iter
        (fun v ->
          match Tlb.Fa_tlb.access t ~vpn:(Int64.of_int v) with
          | `Hit -> incr hits
          | _ -> ())
        (List.sort_uniq compare vpns);
      !hits <= 8)

let suite =
  ( "tlb",
    [
      Alcotest.test_case "fa hit/miss" `Quick test_fa_hit_miss;
      Alcotest.test_case "fa LRU eviction" `Quick test_fa_lru_eviction;
      Alcotest.test_case "fa loads base page only" `Quick test_fa_ignores_wide_kinds;
      Alcotest.test_case "fa flush" `Quick test_fa_flush;
      Alcotest.test_case "sp coverage" `Quick test_sp_coverage;
      Alcotest.test_case "sp base entries" `Quick test_sp_base_entries_one_page;
      Alcotest.test_case "sp sweep miss reduction" `Quick
        test_sp_miss_reduction_on_sweep;
      Alcotest.test_case "psb merge when placed" `Quick
        test_psb_merge_properly_placed;
      Alcotest.test_case "psb improper placement" `Quick
        test_psb_improper_placement_extra_entry;
      Alcotest.test_case "psb translation fill" `Quick test_psb_fill_psb_translation;
      Alcotest.test_case "csb miss classes" `Quick test_csb_miss_classes;
      Alcotest.test_case "csb arbitrary frames" `Quick test_csb_arbitrary_frames;
      Alcotest.test_case "csb prefetch" `Quick
        test_csb_prefetch_eliminates_subblock_misses;
      Alcotest.test_case "csb psb/sp fills" `Quick test_csb_fill_psb_and_sp;
      Alcotest.test_case "assoc store" `Quick test_assoc_store;
      QCheck_alcotest.to_alcotest prop_fa_never_exceeds_capacity;
    ] )

(* --- ASID tagging --- *)

let test_tagged_contexts_coexist () =
  let t = Tlb.Tagged_tlb.create (Tlb.Intf.fa ~entries:8 ()) in
  Tlb.Tagged_tlb.set_context t ~asid:1;
  Tlb.Tagged_tlb.fill t (base_tr 5L 50L);
  Tlb.Tagged_tlb.set_context t ~asid:2;
  (* same VPN, different context: a miss *)
  Alcotest.(check bool) "other context misses" true
    (Tlb.Tagged_tlb.access t ~vpn:5L = `Block_miss);
  Tlb.Tagged_tlb.fill t (base_tr 5L 99L);
  (* both contexts now resident *)
  Alcotest.(check bool) "context 2 hits" true
    (Tlb.Tagged_tlb.access t ~vpn:5L = `Hit);
  Tlb.Tagged_tlb.set_context t ~asid:1;
  Alcotest.(check bool) "context 1 survived the switch" true
    (Tlb.Tagged_tlb.access t ~vpn:5L = `Hit)

let test_tagged_flush_and_bounds () =
  let t = Tlb.Tagged_tlb.create ~asid_bits:4 (Tlb.Intf.fa ~entries:8 ()) in
  Tlb.Tagged_tlb.set_context t ~asid:15;
  Alcotest.(check int) "context readable" 15 (Tlb.Tagged_tlb.context t);
  Alcotest.check_raises "asid out of range"
    (Invalid_argument "Tagged_tlb.set_context") (fun () ->
      Tlb.Tagged_tlb.set_context t ~asid:16);
  Tlb.Tagged_tlb.fill t (base_tr 1L 2L);
  Tlb.Tagged_tlb.flush t;
  Alcotest.(check bool) "flush clears all contexts" true
    (Tlb.Tagged_tlb.access t ~vpn:1L = `Block_miss)

let test_tagged_block_arithmetic_preserved () =
  (* tagging must not disturb VPBN/Boff splitting inside a csb TLB *)
  let t = Tlb.Tagged_tlb.create (Tlb.Intf.csb ~entries:8 ()) in
  Tlb.Tagged_tlb.set_context t ~asid:3;
  Tlb.Tagged_tlb.fill t (base_tr 0x10L 0x100L);
  Alcotest.(check bool) "same block, other page: subblock miss" true
    (Tlb.Tagged_tlb.access t ~vpn:0x11L = `Subblock_miss);
  Tlb.Tagged_tlb.set_context t ~asid:4;
  Alcotest.(check bool) "other context: block miss" true
    (Tlb.Tagged_tlb.access t ~vpn:0x11L = `Block_miss)

let test_tagged_per_context_attribution () =
  (* per-context stats carry the base/superpage hit split, and the
     aggregate equals the sum over contexts *)
  let t = Tlb.Tagged_tlb.create (Tlb.Intf.superpage ~entries:16 ()) in
  Tlb.Tagged_tlb.set_context t ~asid:1;
  Tlb.Tagged_tlb.fill t (base_tr 5L 50L);
  ignore (Tlb.Tagged_tlb.access t ~vpn:5L);
  ignore (Tlb.Tagged_tlb.access t ~vpn:9L);
  Tlb.Tagged_tlb.set_context t ~asid:2;
  Tlb.Tagged_tlb.fill t
    (sp_tr ~vpn:0x22L ~vpn_base:0x20L ~ppn_base:0x800L Addr.Page_size.kb64);
  ignore (Tlb.Tagged_tlb.access t ~vpn:0x23L);
  ignore (Tlb.Tagged_tlb.access t ~vpn:0x21L);
  let s1 = Tlb.Tagged_tlb.context_stats t ~asid:1 in
  let s2 = Tlb.Tagged_tlb.context_stats t ~asid:2 in
  Alcotest.(check int) "asid 1 accesses" 2 s1.Tlb.Stats.accesses;
  Alcotest.(check int) "asid 1 base hits" 1 s1.Tlb.Stats.base_hits;
  Alcotest.(check int) "asid 1 sp hits" 0 s1.Tlb.Stats.sp_hits;
  Alcotest.(check int) "asid 1 block misses" 1 s1.Tlb.Stats.block_misses;
  Alcotest.(check int) "asid 2 accesses" 2 s2.Tlb.Stats.accesses;
  Alcotest.(check int) "asid 2 sp hits" 2 s2.Tlb.Stats.sp_hits;
  Alcotest.(check int) "asid 2 base hits" 0 s2.Tlb.Stats.base_hits;
  let agg = Tlb.Tagged_tlb.stats t in
  Alcotest.(check int)
    "aggregate accesses = sum over contexts"
    (s1.Tlb.Stats.accesses + s2.Tlb.Stats.accesses)
    agg.Tlb.Stats.accesses;
  Alcotest.(check int)
    "aggregate base hits = sum" (s1.Tlb.Stats.base_hits + s2.Tlb.Stats.base_hits)
    agg.Tlb.Stats.base_hits;
  Alcotest.(check int)
    "aggregate sp hits = sum" (s1.Tlb.Stats.sp_hits + s2.Tlb.Stats.sp_hits)
    agg.Tlb.Stats.sp_hits;
  let never = Tlb.Tagged_tlb.context_stats t ~asid:7 in
  Alcotest.(check int) "unknown context zeroed" 0 never.Tlb.Stats.accesses

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "tagged: contexts coexist" `Quick
          test_tagged_contexts_coexist;
        Alcotest.test_case "tagged: flush & bounds" `Quick
          test_tagged_flush_and_bounds;
        Alcotest.test_case "tagged: block arithmetic" `Quick
          test_tagged_block_arithmetic_preserved;
        Alcotest.test_case "tagged: per-context attribution" `Quick
          test_tagged_per_context_attribution;
      ] )

(* --- replacement policies --- *)

let test_fifo_ignores_recency () =
  let t = Tlb.Fa_tlb.create ~policy:Tlb.Assoc.Fifo ~entries:2 () in
  Tlb.Fa_tlb.fill t (base_tr 1L 10L);
  Tlb.Fa_tlb.fill t (base_tr 2L 20L);
  (* touch 1 repeatedly: FIFO doesn't care, 1 is still the oldest *)
  for _ = 1 to 5 do
    ignore (Tlb.Fa_tlb.access t ~vpn:1L)
  done;
  Tlb.Fa_tlb.fill t (base_tr 3L 30L);
  Alcotest.(check bool) "oldest evicted despite hits" true
    (Tlb.Fa_tlb.access t ~vpn:1L = `Block_miss);
  Alcotest.(check bool) "2 survived" true (Tlb.Fa_tlb.access t ~vpn:2L = `Hit)

let test_random_is_deterministic_and_valid () =
  let run () =
    let t = Tlb.Fa_tlb.create ~policy:(Tlb.Assoc.Random 42L) ~entries:4 () in
    for i = 0 to 63 do
      let vpn = Int64.of_int i in
      match Tlb.Fa_tlb.access t ~vpn with
      | `Hit -> ()
      | _ -> Tlb.Fa_tlb.fill t (base_tr vpn vpn)
    done;
    (* which of the last pages survived is seed-determined *)
    List.filter
      (fun v -> Tlb.Fa_tlb.access t ~vpn:(Int64.of_int v) = `Hit)
      [ 60; 61; 62; 63 ]
  in
  Alcotest.(check (list int)) "same seed, same survivors" (run ()) (run ());
  let t = Tlb.Fa_tlb.create ~policy:(Tlb.Assoc.Random 1L) ~entries:4 () in
  for i = 0 to 99 do
    let vpn = Int64.of_int i in
    match Tlb.Fa_tlb.access t ~vpn with
    | `Hit -> ()
    | _ -> Tlb.Fa_tlb.fill t (base_tr vpn vpn)
  done;
  (* capacity never exceeded *)
  let resident = ref 0 in
  for i = 0 to 99 do
    if Tlb.Fa_tlb.access t ~vpn:(Int64.of_int i) = `Hit then incr resident
  done;
  Alcotest.(check bool) "at most 4 resident" true (!resident <= 4)

let test_lru_beats_fifo_on_loop_with_hot_page () =
  (* a hot page re-touched between misses: LRU protects it, FIFO
     cycles it out *)
  let run policy =
    let t = Tlb.Fa_tlb.create ~policy ~entries:4 () in
    let misses = ref 0 in
    for round = 0 to 63 do
      (* hot page 0 every iteration *)
      (match Tlb.Fa_tlb.access t ~vpn:0L with
      | `Hit -> ()
      | _ ->
          incr misses;
          Tlb.Fa_tlb.fill t (base_tr 0L 0L));
      (* a stream of cold pages *)
      let vpn = Int64.of_int (1 + round) in
      match Tlb.Fa_tlb.access t ~vpn with
      | `Hit -> ()
      | _ ->
          incr misses;
          Tlb.Fa_tlb.fill t (base_tr vpn vpn)
    done;
    !misses
  in
  Alcotest.(check bool) "LRU keeps the hot page" true
    (run Tlb.Assoc.Lru < run Tlb.Assoc.Fifo)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "fifo ignores recency" `Quick test_fifo_ignores_recency;
        Alcotest.test_case "random deterministic & bounded" `Quick
          test_random_is_deterministic_and_valid;
        Alcotest.test_case "lru vs fifo hot page" `Quick
          test_lru_beats_fifo_on_loop_with_hot_page;
      ] )

(* --- stats: per-page-size hit attribution and full reset (PR 4) --- *)

let test_stats_reset_equals_fresh () =
  let s = Tlb.Stats.create () in
  s.Tlb.Stats.accesses <- 7;
  s.Tlb.Stats.hits <- 5;
  s.Tlb.Stats.base_hits <- 3;
  s.Tlb.Stats.sp_hits <- 2;
  s.Tlb.Stats.block_misses <- 1;
  s.Tlb.Stats.subblock_misses <- 1;
  s.Tlb.Stats.evictions <- 4;
  Tlb.Stats.reset s;
  Alcotest.(check bool)
    "reset zeroes every field (structurally equal to fresh)" true
    (s = Tlb.Stats.create ())

let check_hit_split name stats ~base ~sp =
  Alcotest.(check int) (name ^ ": base hits") base stats.Tlb.Stats.base_hits;
  Alcotest.(check int) (name ^ ": sp hits") sp stats.Tlb.Stats.sp_hits;
  Alcotest.(check int)
    (name ^ ": hits = base + sp")
    stats.Tlb.Stats.hits
    (stats.Tlb.Stats.base_hits + stats.Tlb.Stats.sp_hits)

let test_sp_hit_attribution () =
  let t = Tlb.Superpage_tlb.create ~entries:8 () in
  Tlb.Superpage_tlb.fill t
    (sp_tr ~vpn:0x12L ~vpn_base:0x10L ~ppn_base:0x100L Addr.Page_size.kb16);
  Tlb.Superpage_tlb.fill t (base_tr 1L 0x200L);
  ignore (Tlb.Superpage_tlb.access t ~vpn:0x11L);
  ignore (Tlb.Superpage_tlb.access t ~vpn:0x13L);
  ignore (Tlb.Superpage_tlb.access t ~vpn:1L);
  check_hit_split "superpage TLB" (Tlb.Superpage_tlb.stats t) ~base:1 ~sp:2

let test_psb_hit_attribution () =
  let t = Tlb.Psb_tlb.create ~entries:8 ~subblock_factor:16 () in
  (* a full-block superpage marks all 16 bits superpage-derived *)
  Tlb.Psb_tlb.fill t
    (sp_tr ~vpn:0x20L ~vpn_base:0x20L ~ppn_base:0x400L Addr.Page_size.kb64);
  ignore (Tlb.Psb_tlb.access t ~vpn:0x22L);
  check_hit_split "psb after sp fill" (Tlb.Psb_tlb.stats t) ~base:0 ~sp:1;
  (* a base fill of one page reclaims that bit for base attribution *)
  Tlb.Psb_tlb.fill t (base_tr 0x22L 0x402L);
  ignore (Tlb.Psb_tlb.access t ~vpn:0x22L);
  ignore (Tlb.Psb_tlb.access t ~vpn:0x23L);
  check_hit_split "psb after base refill" (Tlb.Psb_tlb.stats t) ~base:1 ~sp:2

let test_csb_hit_attribution () =
  let t = Tlb.Csb_tlb.create ~entries:8 ~subblock_factor:16 () in
  Tlb.Csb_tlb.fill t
    (sp_tr ~vpn:0x40L ~vpn_base:0x40L ~ppn_base:0x800L Addr.Page_size.kb64);
  Tlb.Csb_tlb.fill t (base_tr 0x41L 0x900L);
  ignore (Tlb.Csb_tlb.access t ~vpn:0x42L);
  ignore (Tlb.Csb_tlb.access t ~vpn:0x41L);
  check_hit_split "csb TLB" (Tlb.Csb_tlb.stats t) ~base:1 ~sp:1

let test_fa_hits_are_base () =
  let t = Tlb.Fa_tlb.create ~entries:4 () in
  Tlb.Fa_tlb.fill t (base_tr 1L 100L);
  ignore (Tlb.Fa_tlb.access t ~vpn:1L);
  ignore (Tlb.Fa_tlb.access t ~vpn:1L);
  check_hit_split "conventional TLB" (Tlb.Fa_tlb.stats t) ~base:2 ~sp:0

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "stats reset = fresh" `Quick
          test_stats_reset_equals_fresh;
        Alcotest.test_case "sp TLB hit attribution" `Quick
          test_sp_hit_attribution;
        Alcotest.test_case "psb TLB hit attribution" `Quick
          test_psb_hit_attribution;
        Alcotest.test_case "csb TLB hit attribution" `Quick
          test_csb_hit_attribution;
        Alcotest.test_case "fa TLB hits are base hits" `Quick
          test_fa_hits_are_base;
      ] )
