(* Model-based checking shared by every page-table implementation:
   random insert/remove/lookup sequences are mirrored in a Hashtbl and
   the table must agree with the model afterwards. *)

module Intf = Pt_common.Intf
module Types = Pt_common.Types

type op =
  | Insert of int64 * int64 (* vpn, ppn *)
  | Remove of int64

let op_gen ~vpn_space =
  QCheck.Gen.(
    int_bound (vpn_space - 1) >>= fun v ->
    let vpn = Int64.of_int v in
    frequency
      [
        ( 3,
          map
            (fun p -> Insert (vpn, Int64.of_int p))
            (int_bound ((1 lsl 20) - 1)) );
        (1, return (Remove vpn));
      ])

let ops_arbitrary ~vpn_space ~len =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 len) (op_gen ~vpn_space))
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert (v, p) -> Printf.sprintf "I(%Ld,%Ld)" v p
             | Remove v -> Printf.sprintf "R(%Ld)" v)
           ops))

(* Run ops against [make ()] and a Hashtbl model; check full agreement
   over the touched VPN space, plus the population count. *)
let agrees ~make ops =
  let pt = make () in
  let model : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Insert (vpn, ppn) ->
          Intf.insert_base pt ~vpn ~ppn ~attr:Pte.Attr.default;
          Hashtbl.replace model vpn ppn
      | Remove vpn ->
          Intf.remove pt ~vpn;
          Hashtbl.remove model vpn)
    ops;
  let vpns =
    List.sort_uniq compare
      (List.map (function Insert (v, _) -> v | Remove v -> v) ops)
  in
  List.for_all
    (fun vpn ->
      let got = fst (Intf.lookup pt ~vpn) in
      match (Hashtbl.find_opt model vpn, got) with
      | None, None -> true
      | Some ppn, Some tr ->
          Int64.equal tr.Types.ppn ppn && Types.covered_pages tr = 1
      | Some _, None | None, Some _ -> false)
    vpns
  && Intf.population pt = Hashtbl.length model

let model_test ~name ~make =
  QCheck.Test.make ~name ~count:100
    (ops_arbitrary ~vpn_space:200 ~len:120)
    (fun ops -> agrees ~make ops)

(* Size must return to zero after removing everything. *)
let drain_test ~name ~make =
  QCheck.Test.make ~name ~count:50
    (ops_arbitrary ~vpn_space:100 ~len:60)
    (fun ops ->
      let pt = make () in
      List.iter
        (function
          | Insert (vpn, ppn) ->
              Intf.insert_base pt ~vpn ~ppn ~attr:Pte.Attr.default
          | Remove vpn -> Intf.remove pt ~vpn)
        ops;
      for v = 0 to 99 do
        Intf.remove pt ~vpn:(Int64.of_int v)
      done;
      Intf.population pt = 0)

(* --- lookup_into equivalence ---

   The allocation-free [lookup_into] must translate identically to the
   legacy [lookup] AND charge the same walk: same memory reads, same
   probe count, same nested misses.  Two identically-populated tables
   are compared because lookups can be stateful (the TSBs install
   entries as they run), so issuing both entry points against one table
   would entangle their histories; instead each table sees the same
   lookup sequence through its own entry point. *)
let walk_equiv ~make ops =
  let pt_a = make () and pt_b = make () in
  let apply pt =
    List.iter
      (function
        | Insert (vpn, ppn) ->
            Intf.insert_base pt ~vpn ~ppn ~attr:Pte.Attr.default
        | Remove vpn -> Intf.remove pt ~vpn)
      ops
  in
  apply pt_a;
  apply pt_b;
  let acc = Mem.Walk_acc.create () in
  let vpns =
    List.sort_uniq compare
      (List.map (function Insert (v, _) -> v | Remove v -> v) ops)
  in
  List.for_all
    (fun vpn ->
      let legacy, walk = Intf.lookup pt_a ~vpn in
      Mem.Walk_acc.reset acc;
      let through_acc = Intf.lookup_into pt_b acc ~vpn in
      let same_translation =
        match (legacy, through_acc) with
        | None, None -> true
        | Some a, Some b ->
            Int64.equal a.Types.ppn b.Types.ppn
            && Types.covered_pages a = Types.covered_pages b
        | Some _, None | None, Some _ -> false
      in
      let acc_reads = ref [] in
      Mem.Walk_acc.iter acc (fun addr bytes ->
          acc_reads := { Mem.Cache_model.addr; bytes } :: !acc_reads);
      (* the walk lists reads most recent first; compare as sorted
         multisets so only the set of charged reads matters *)
      let sorted l = List.sort compare l in
      same_translation
      && sorted walk.Types.accesses = sorted !acc_reads
      && Mem.Walk_acc.probes acc = walk.Types.probes
      && Mem.Walk_acc.nested_misses acc = walk.Types.nested_misses)
    vpns

let walk_equiv_test ~name ~make =
  QCheck.Test.make ~name ~count:60 (ops_arbitrary ~vpn_space:200 ~len:120)
    (fun ops -> walk_equiv ~make ops)

(* --- mixed-format model checking ---

   Sequences mixing base pages, 64 KB superpages and partial-subblock
   PTEs, with the documented removal semantics (removing any page of a
   superpage removes the whole superpage; removing a psb page clears
   one valid bit).  The model tracks per-page frames plus what kind of
   entry covers each page, and the same semantics apply to the model
   and the table under test — which works uniformly for clustered,
   hashed (two tables), linear and forward-mapped because they all
   implement the same documented behaviour. *)

type mixed_op =
  | MBase of int64 * int64 (* vpn, ppn *)
  | MRemove of int64
  | MSp of int64 * int64 (* vpbn, block-aligned ppn *)
  | MPsb of int64 * int * int64 (* vpbn, vmask, block-aligned ppn *)

let mixed_op_gen ~blocks =
  QCheck.Gen.(
    int_bound (blocks - 1) >>= fun block ->
    let vpbn = Int64.of_int block in
    int_bound 15 >>= fun boff ->
    let vpn = Int64.add (Int64.shift_left vpbn 4) (Int64.of_int boff) in
    let aligned_ppn = map (fun b -> Int64.of_int (b lsl 4)) (int_bound 0xFFF) in
    frequency
      [
        (4, map (fun p -> MBase (vpn, Int64.of_int p)) (int_bound 0xFFFFF));
        (2, return (MRemove vpn));
        (1, map (fun p -> MSp (vpbn, p)) aligned_ppn);
        ( 2,
          map2
            (fun vmask p -> MPsb (vpbn, (vmask lor 1), p))
            (int_bound 0xFFFF) aligned_ppn );
      ])

let mixed_ops_arbitrary ~blocks ~len =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 len) (mixed_op_gen ~blocks))
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | MBase (v, p) -> Printf.sprintf "B(%Ld,%Ld)" v p
             | MRemove v -> Printf.sprintf "R(%Ld)" v
             | MSp (b, p) -> Printf.sprintf "S(%Ld,%Ld)" b p
             | MPsb (b, m, p) -> Printf.sprintf "P(%Ld,%x,%Ld)" b m p)
           ops))

(* The reference model: page -> frame, plus the covering-entry kind. *)
module Model = struct
  type entry = EBase | ESp of int64 (* block base vpn *) | EPsb

  type t = (int64, int64 * entry) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let remove m vpn =
    match Hashtbl.find_opt m vpn with
    | None -> ()
    | Some (_, EBase) | Some (_, EPsb) -> Hashtbl.remove m vpn
    | Some (_, ESp base) ->
        for i = 0 to 15 do
          Hashtbl.remove m (Int64.add base (Int64.of_int i))
        done

  let clear_block m vpbn =
    for i = 0 to 15 do
      remove m (Int64.add (Int64.shift_left vpbn 4) (Int64.of_int i))
    done
end

let apply_mixed pt model op =
  let attr = Pte.Attr.default in
  let clear_block vpbn =
    Model.clear_block model vpbn;
    for i = 0 to 15 do
      let vpn = Int64.add (Int64.shift_left vpbn 4) (Int64.of_int i) in
      Intf.remove pt ~vpn;
      (* a psb node and base words can coexist on a chain; drain *)
      while fst (Intf.lookup pt ~vpn) <> None do
        Intf.remove pt ~vpn
      done
    done
  in
  match op with
  | MBase (vpn, ppn) ->
      Model.remove model vpn;
      Intf.remove pt ~vpn;
      while fst (Intf.lookup pt ~vpn) <> None do
        Intf.remove pt ~vpn
      done;
      Hashtbl.replace model vpn (ppn, Model.EBase);
      Intf.insert_base pt ~vpn ~ppn ~attr
  | MRemove vpn ->
      Model.remove model vpn;
      Intf.remove pt ~vpn
  | MSp (vpbn, ppn) ->
      clear_block vpbn;
      let base = Int64.shift_left vpbn 4 in
      for i = 0 to 15 do
        Hashtbl.replace model
          (Int64.add base (Int64.of_int i))
          (Int64.add ppn (Int64.of_int i), Model.ESp base)
      done;
      Intf.insert_superpage pt ~vpn:base ~size:Addr.Page_size.kb64 ~ppn ~attr
  | MPsb (vpbn, vmask, ppn) ->
      clear_block vpbn;
      let base = Int64.shift_left vpbn 4 in
      for i = 0 to 15 do
        if vmask land (1 lsl i) <> 0 then
          Hashtbl.replace model
            (Int64.add base (Int64.of_int i))
            (Int64.add ppn (Int64.of_int i), Model.EPsb)
      done;
      Intf.insert_psb pt ~vpbn ~vmask ~ppn ~attr

let mixed_agrees ~make ops =
  let pt = make () in
  let model = Model.create () in
  List.iter (apply_mixed pt model) ops;
  let ok = ref true in
  for v = 0 to (8 * 16) - 1 do
    let vpn = Int64.of_int v in
    let got = fst (Intf.lookup pt ~vpn) in
    (match (Hashtbl.find_opt model vpn, got) with
    | None, None -> ()
    | Some (ppn, _), Some tr when Int64.equal tr.Types.ppn ppn -> ()
    | _, _ -> ok := false)
  done;
  !ok && Intf.population pt = Hashtbl.length model

let mixed_model_test ~name ~make =
  QCheck.Test.make ~name ~count:100 (mixed_ops_arbitrary ~blocks:8 ~len:60)
    (fun ops -> mixed_agrees ~make ops)

(* --- concurrent history checking (the lib/service oracle) ---

   Each service domain records the operations it issued, in program
   order, together with what it observed.  When every domain owns a
   disjoint key set, per-domain program order IS a linearization of
   the per-key histories: replaying each domain's history against this
   sequential model must reproduce every observation, and merging the
   models must reproduce the final table.  Any lost insert, resurrected
   remove, or torn lookup under concurrency shows up as a divergence. *)

type hist_op =
  | HInsert of int64 * int64  (* vpn, ppn *)
  | HRemove of int64
  | HLookup of int64 * bool  (* vpn, observed hit *)
  | HProtect of int64 * int * int  (* first vpn, pages, observed searches *)

(* Replay one domain's history into [model]; false on the first
   observation the sequential model cannot explain. *)
let replay_history model hist =
  List.for_all
    (function
      | HInsert (vpn, ppn) ->
          Hashtbl.replace model vpn ppn;
          true
      | HRemove vpn ->
          Hashtbl.remove model vpn;
          true
      | HLookup (vpn, hit) -> Hashtbl.mem model vpn = hit
      | HProtect (_, _, searches) -> searches >= 0)
    hist

let touched_keys histories =
  let keys = Hashtbl.create 1024 in
  List.iter
    (List.iter (function
      | HInsert (v, _) | HRemove v | HLookup (v, _) ->
          Hashtbl.replace keys v ()
      | HProtect (first, pages, _) ->
          for i = 0 to pages - 1 do
            Hashtbl.replace keys (Int64.add first (Int64.of_int i)) ()
          done))
    histories;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

(* Check per-domain histories (disjoint key sets) against the final
   service state: every observation sequentially explainable, every
   touched key's final presence agreed (mapped AND unmapped), and the
   population identical. *)
let check_histories ~lookup ~population histories =
  let model : (int64, int64) Hashtbl.t = Hashtbl.create 1024 in
  List.for_all (replay_history model) histories
  && List.for_all
       (fun vpn -> lookup vpn = Hashtbl.mem model vpn)
       (touched_keys histories)
  && population = Hashtbl.length model
