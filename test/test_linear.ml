(* Multi-level linear page table. *)

module L = Baselines.Linear_pt
module Types = Pt_common.Types

let attr = Pte.Attr.default

let instance ?size_variant () =
  Pt_common.Intf.Instance ((module L), L.create ?size_variant ())

let test_basic () =
  let t = L.create () in
  L.insert_base t ~vpn:0x41034L ~ppn:0x77L ~attr;
  (match L.lookup t ~vpn:0x41034L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 0x77L tr.Types.ppn;
      Alcotest.(check int) "exactly one read" 1 (List.length walk.Types.accesses);
      Alcotest.(check int) "one line" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found");
  Alcotest.(check bool) "unmapped faults" true (fst (L.lookup t ~vpn:0x999L) = None)

let test_page_granular_allocation () =
  let t = L.create ~size_variant:`One_level () in
  L.insert_base t ~vpn:0L ~ppn:1L ~attr;
  (* one PTE costs a whole 4 KB leaf page *)
  Alcotest.(check int) "one leaf page" 4096 (L.size_bytes t);
  (* 511 more PTEs in the same page cost nothing further *)
  for i = 1 to 511 do
    L.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  Alcotest.(check int) "still one leaf page" 4096 (L.size_bytes t);
  L.insert_base t ~vpn:512L ~ppn:0L ~attr;
  Alcotest.(check int) "second leaf page" 8192 (L.size_bytes t)

let test_six_level_overhead () =
  let t = L.create ~size_variant:`Six_level () in
  L.insert_base t ~vpn:0L ~ppn:1L ~attr;
  (* one mapped page materializes the whole 6-level spine *)
  Alcotest.(check int) "six pages" (6 * 4096) (L.size_bytes t);
  Alcotest.(check int) "one page per level" 1 (L.pages_at_level t ~level:6);
  (* a page 2^26 pages away shares levels 3..6 but needs its own
     leaf and level-2 pages *)
  L.insert_base t ~vpn:0x4000000L ~ppn:2L ~attr;
  Alcotest.(check int) "far page adds exactly two pages" (8 * 4096)
    (L.size_bytes t)

let test_leaf_plus_hash_variant () =
  let t = L.create ~size_variant:`Leaf_plus_hash () in
  L.insert_base t ~vpn:0L ~ppn:1L ~attr;
  Alcotest.(check int) "Table 2: (4KB+24) per leaf" 4120 (L.size_bytes t)

let test_prune_on_remove () =
  let t = L.create () in
  L.insert_base t ~vpn:0x1234L ~ppn:1L ~attr;
  let before = L.size_bytes t in
  L.remove t ~vpn:0x1234L;
  Alcotest.(check bool) "removed" true (fst (L.lookup t ~vpn:0x1234L) = None);
  Alcotest.(check int) "all pages pruned" 0 (L.size_bytes t);
  Alcotest.(check bool) "had allocated before" true (before > 0)

let test_superpage_replication () =
  let t = L.create ~size_variant:`One_level () in
  L.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x200L ~attr;
  (* replicate-PTEs: every covered base site holds the word, so the
     superpage saves no page-table memory *)
  Alcotest.(check int) "population is all sixteen" 16 (L.population t);
  (match L.lookup t ~vpn:0x4DL with
  | Some tr, _ ->
      Alcotest.(check int64) "offset ppn" 0x20DL tr.Types.ppn;
      Alcotest.(check bool) "superpage kind" true
        (tr.Types.kind = Types.Superpage Addr.Page_size.kb64)
  | None, _ -> Alcotest.fail "superpage site");
  (* removing any page removes the whole superpage (all replicas) *)
  L.remove t ~vpn:0x45L;
  Alcotest.(check int) "all replicas dropped" 0 (L.population t)

let test_psb_replication () =
  let t = L.create () in
  L.insert_psb t ~vpbn:4L ~vmask:0b110 ~ppn:0x40L ~attr;
  Alcotest.(check int) "two valid sites" 2 (L.population t);
  (match L.lookup t ~vpn:0x42L with
  | Some tr, _ -> Alcotest.(check int64) "psb ppn" 0x42L tr.Types.ppn
  | None, _ -> Alcotest.fail "psb site");
  Alcotest.(check bool) "invalid bit faults" true
    (fst (L.lookup t ~vpn:0x40L) = None);
  (* removing one page updates the remaining replicas' vector *)
  L.remove t ~vpn:0x42L;
  (match L.lookup t ~vpn:0x41L with
  | Some tr, _ ->
      Alcotest.(check bool) "survivor's mask shrank" true
        (tr.Types.kind = Types.Partial_subblock 0b010)
  | None, _ -> Alcotest.fail "survivor lost")

let test_block_read_is_one_line () =
  let t = L.create () in
  for i = 0 to 15 do
    L.insert_base t ~vpn:(Int64.of_int (0x40 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  let found, walk = L.lookup_block t ~vpn:0x45L ~subblock_factor:16 in
  Alcotest.(check int) "all sixteen" 16 (List.length found);
  (* adjacent leaf PTEs: a single 128-byte read *)
  Alcotest.(check int) "one access" 1 (List.length walk.Types.accesses);
  Alcotest.(check int) "one 256B line" 1 (Types.walk_lines walk)

let test_leaf_page_vpn_stable () =
  let t = L.create () in
  Alcotest.(check bool) "same leaf for same 512-page region" true
    (Int64.equal (L.leaf_page_vpn t ~vpn:0L) (L.leaf_page_vpn t ~vpn:511L));
  Alcotest.(check bool) "different leaf across regions" false
    (Int64.equal (L.leaf_page_vpn t ~vpn:0L) (L.leaf_page_vpn t ~vpn:512L))

let prop_model = Pt_model.model_test ~name:"linear agrees with model"
    ~make:(fun () -> instance ())

let prop_drain = Pt_model.drain_test ~name:"linear drains to empty"
    ~make:(fun () -> instance ())

let prop_size_is_page_multiple =
  QCheck.Test.make ~name:"linear size is a whole number of pages" ~count:50
    (Pt_model.ops_arbitrary ~vpn_space:3000 ~len:80)
    (fun ops ->
      let t = L.create () in
      List.iter
        (function
          | Pt_model.Insert (vpn, ppn) -> L.insert_base t ~vpn ~ppn ~attr
          | Pt_model.Remove vpn -> L.remove t ~vpn)
        ops;
      L.size_bytes t mod 4096 = 0)

let suite =
  ( "linear",
    [
      Alcotest.test_case "basics" `Quick test_basic;
      Alcotest.test_case "page-granular allocation" `Quick
        test_page_granular_allocation;
      Alcotest.test_case "six-level overhead" `Quick test_six_level_overhead;
      Alcotest.test_case "leaf+hash accounting" `Quick test_leaf_plus_hash_variant;
      Alcotest.test_case "prune on remove" `Quick test_prune_on_remove;
      Alcotest.test_case "superpage replication" `Quick test_superpage_replication;
      Alcotest.test_case "psb replication" `Quick test_psb_replication;
      Alcotest.test_case "block read = one line" `Quick test_block_read_is_one_line;
      Alcotest.test_case "leaf page vpn" `Quick test_leaf_page_vpn_stable;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_drain;
      QCheck_alcotest.to_alcotest prop_size_is_page_multiple;
    ] )
