(* Page sizes, virtual/physical addresses, regions. *)

open Addr

let i64 = Alcotest.(check int64)

let test_page_sizes () =
  Alcotest.(check int) "base bytes" 4096 (Page_size.bytes Page_size.base);
  Alcotest.(check int) "64KB base pages" 16 (Page_size.base_pages Page_size.kb64);
  Alcotest.(check int) "sz code 4KB" 0 (Page_size.sz_code Page_size.base);
  Alcotest.(check int) "sz code 64KB" 4 (Page_size.sz_code Page_size.kb64);
  Alcotest.(check int) "sz code 16MB" 12 (Page_size.sz_code Page_size.mb16);
  Alcotest.(check bool) "roundtrip"
    true
    (Page_size.equal Page_size.mb1 (Page_size.of_sz_code 8));
  Alcotest.check_raises "too small" (Invalid_argument "Page_size.of_shift")
    (fun () -> ignore (Page_size.of_shift 11));
  Alcotest.(check string) "pp 64KB" "64KB"
    (Format.asprintf "%a" Page_size.pp Page_size.kb64);
  Alcotest.(check string) "pp 4MB" "4MB"
    (Format.asprintf "%a" Page_size.pp Page_size.mb4)

let test_vaddr_split () =
  (* the paper's own example (Section 4.4): address 0x41034 is in base
     page 0x41 of page block 0x4 *)
  i64 "paper example vpn" 0x41L (Vaddr.vpn 0x41034L);
  i64 "paper example vpbn" 0x4L (Vaddr.vpbn ~subblock_factor:16 0x41034L);
  Alcotest.(check int) "paper example boff" 1
    (Vaddr.boff ~subblock_factor:16 0x41034L);
  let a = 0x0000_0041_0345_6789L in
  i64 "vpn" 0x4103456L (Vaddr.vpn a);
  Alcotest.(check int) "offset" 0x789 (Vaddr.page_offset a);
  i64 "vpbn factor 16" 0x410345L (Vaddr.vpbn ~subblock_factor:16 a);
  Alcotest.(check int) "boff factor 16" 6 (Vaddr.boff ~subblock_factor:16 a);
  i64 "reassemble"
    0x4103456L
    (Vaddr.vpn_of_vpbn ~subblock_factor:16 0x410345L ~boff:6);
  i64 "of_vpn" 0x4103456000L (Vaddr.of_vpn 0x4103456L)

let test_vaddr_align () =
  let a = 0x12345678L in
  i64 "align 64KB" 0x12340000L (Vaddr.align Page_size.kb64 a);
  Alcotest.(check bool) "aligned" true
    (Vaddr.is_aligned Page_size.kb64 0x20000L);
  i64 "add_pages" 0x12347678L (Vaddr.add_pages a 2)

let test_top_bit_addresses () =
  (* 64-bit addresses with the top bit set must behave unsigned *)
  let a = 0xFFFF_FFFF_FFFF_F000L in
  i64 "vpn of top address" 0xF_FFFF_FFFF_FFFFL (Vaddr.vpn a);
  Alcotest.(check int) "compare unsigned" 1 (Vaddr.compare a 0x1000L)

let test_properly_placed () =
  Alcotest.(check bool) "matching offsets" true
    (Paddr.properly_placed ~subblock_factor:16 ~vpn:0x1005L ~ppn:0x2345L);
  Alcotest.(check bool) "mismatched offsets" false
    (Paddr.properly_placed ~subblock_factor:16 ~vpn:0x1005L ~ppn:0x2346L)

let test_region_basics () =
  let r = Region.make ~first_vpn:100L ~pages:10 in
  i64 "last" 109L (Region.last_vpn r);
  Alcotest.(check bool) "mem in" true (Region.mem r 105L);
  Alcotest.(check bool) "mem out" false (Region.mem r 110L);
  let count = ref 0 in
  Region.iter_vpns r (fun _ -> incr count);
  Alcotest.(check int) "iteration count" 10 !count;
  let r2 = Region.of_addr_range ~start:0x1800L ~bytes:0x1000L in
  Alcotest.(check int) "byte range spans two pages" 2 r2.Region.pages;
  Alcotest.(check bool) "empty not overlapping" false
    (Region.overlap (Region.make ~first_vpn:0L ~pages:0) r)

let test_region_intersect () =
  let a = Region.make ~first_vpn:10L ~pages:10 in
  let b = Region.make ~first_vpn:15L ~pages:10 in
  match Region.intersect a b with
  | Some r ->
      i64 "start" 15L r.Region.first_vpn;
      Alcotest.(check int) "pages" 5 r.Region.pages
  | None -> Alcotest.fail "expected overlap"

let test_region_blocks () =
  (* 10 pages starting at VPN 13 with factor 8: blocks 1 (off 5, 3
     pages), 2 (off 0, 7 pages) *)
  let r = Region.make ~first_vpn:13L ~pages:10 in
  match Region.blocks ~subblock_factor:8 r with
  | [ (b1, o1, c1); (b2, o2, c2) ] ->
      i64 "first block" 1L b1;
      Alcotest.(check int) "first offset" 5 o1;
      Alcotest.(check int) "first count" 3 c1;
      i64 "second block" 2L b2;
      Alcotest.(check int) "second offset" 0 o2;
      Alcotest.(check int) "second count" 7 c2
  | l -> Alcotest.failf "expected 2 blocks, got %d" (List.length l)

let prop_region_blocks_cover =
  QCheck.Test.make ~name:"block decomposition covers exactly the region"
    ~count:300
    QCheck.(triple (int_bound 100000) (int_bound 200) (int_bound 2))
    (fun (first, pages, fsel) ->
      let factor = [| 4; 8; 16 |].(fsel) in
      let r = Addr.Region.make ~first_vpn:(Int64.of_int first) ~pages in
      let blocks = Addr.Region.blocks ~subblock_factor:factor r in
      let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 blocks in
      let in_range =
        List.for_all
          (fun (_, o, c) -> o >= 0 && c >= 1 && o + c <= factor)
          blocks
      in
      let ascending =
        let rec go = function
          | (a, _, _) :: ((b, _, _) :: _ as rest) ->
              Int64.compare a b < 0 && go rest
          | _ -> true
        in
        go blocks
      in
      total = pages && in_range && ascending)

let prop_vpn_split_roundtrip =
  QCheck.Test.make ~name:"vpbn/boff split roundtrips" ~count:500
    QCheck.(pair (map Int64.abs int64) (int_bound 2))
    (fun (vpn, fsel) ->
      let factor = [| 4; 8; 16 |].(fsel) in
      let vpbn = Addr.Vaddr.vpbn_of_vpn ~subblock_factor:factor vpn in
      let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor:factor vpn in
      Int64.equal (Addr.Vaddr.vpn_of_vpbn ~subblock_factor:factor vpbn ~boff) vpn)

let suite =
  ( "addr",
    [
      Alcotest.test_case "page sizes" `Quick test_page_sizes;
      Alcotest.test_case "vaddr split" `Quick test_vaddr_split;
      Alcotest.test_case "vaddr align" `Quick test_vaddr_align;
      Alcotest.test_case "top-bit addresses" `Quick test_top_bit_addresses;
      Alcotest.test_case "properly placed" `Quick test_properly_placed;
      Alcotest.test_case "region basics" `Quick test_region_basics;
      Alcotest.test_case "region intersect" `Quick test_region_intersect;
      Alcotest.test_case "region blocks" `Quick test_region_blocks;
      QCheck_alcotest.to_alcotest prop_region_blocks_cover;
      QCheck_alcotest.to_alcotest prop_vpn_split_roundtrip;
    ] )
