(* Workload substrate: PRNG, snapshots, traces, Table 1 calibration. *)

let test_prng_deterministic () =
  let a = Workload.Prng.create ~seed:42L in
  let b = Workload.Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Workload.Prng.next a)
      (Workload.Prng.next b)
  done;
  let c = Workload.Prng.create ~seed:43L in
  Alcotest.(check bool) "different seed, different stream" false
    (Int64.equal (Workload.Prng.next a) (Workload.Prng.next c))

let test_prng_ranges () =
  let r = Workload.Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Workload.Prng.int r ~bound:10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Workload.Prng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0);
    let x = Workload.Prng.int_in r ~lo:5 ~hi:8 in
    Alcotest.(check bool) "int_in inclusive" true (x >= 5 && x <= 8)
  done

let test_prng_uniformity () =
  let r = Workload.Prng.create ~seed:99L in
  let buckets = Array.make 16 0 in
  let n = 16000 in
  for _ = 1 to n do
    let i = Workload.Prng.int r ~bound:16 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 20% of uniform" true
        (c > n / 16 * 8 / 10 && c < n / 16 * 12 / 10))
    buckets

let test_snapshot_calibration () =
  (* every workload's page count hits its Table 1 target exactly *)
  List.iter
    (fun spec ->
      let snap = Workload.Snapshot.generate spec ~seed:1L in
      Alcotest.(check int)
        (spec.Workload.Spec.name ^ " pages")
        (Workload.Spec.target_pages spec)
        (Workload.Snapshot.total_pages snap))
    Workload.Table1.all_with_kernel

let test_snapshot_hashed_size_matches_paper () =
  (* 24 bytes per page lands within 3% of the paper's reported KB *)
  List.iter
    (fun spec ->
      let kb =
        float_of_int (Workload.Spec.target_pages spec) *. 24.0 /. 1024.0
      in
      let paper = float_of_int spec.Workload.Spec.paper.Workload.Spec.hashed_kb in
      Alcotest.(check bool)
        (spec.Workload.Spec.name ^ " within 3% of paper")
        true
        (abs_float (kb -. paper) /. paper < 0.03))
    Workload.Table1.all

let test_snapshot_deterministic () =
  let spec = Workload.Table1.coral in
  let a = Workload.Snapshot.generate spec ~seed:5L in
  let b = Workload.Snapshot.generate spec ~seed:5L in
  let vpns s =
    List.concat_map
      (fun p -> Array.to_list (Workload.Snapshot.proc_vpns p))
      s.Workload.Snapshot.procs
  in
  Alcotest.(check (list int64)) "same snapshot" (vpns a) (vpns b)

let test_snapshot_no_duplicates () =
  List.iter
    (fun spec ->
      let snap = Workload.Snapshot.generate spec ~seed:11L in
      List.iter
        (fun p ->
          let vpns = Workload.Snapshot.proc_vpns p in
          let uniq =
            Array.to_list vpns |> List.sort_uniq Int64.unsigned_compare
          in
          Alcotest.(check int)
            (spec.Workload.Spec.name ^ "/" ^ p.Workload.Snapshot.pname
           ^ " no duplicate pages")
            (Array.length vpns) (List.length uniq))
        snap.Workload.Snapshot.procs)
    Workload.Table1.all_with_kernel

let test_density_ordering () =
  (* the Figure 9 discussion: coral/ML/kernel dense, gcc/compress
     sparse.  Measure pages per active block. *)
  let density spec =
    let snap = Workload.Snapshot.generate spec ~seed:1L in
    let pages = Workload.Snapshot.total_pages snap in
    let blocks =
      List.fold_left
        (fun acc p -> acc + Workload.Snapshot.active_blocks ~subblock_factor:16 p)
        0 snap.Workload.Snapshot.procs
    in
    float_of_int pages /. float_of_int blocks
  in
  let ml = density Workload.Table1.ml in
  let gcc = density Workload.Table1.gcc in
  Alcotest.(check bool) "ML denser than gcc" true (ml > gcc);
  Alcotest.(check bool) "ML very dense" true (ml > 10.0);
  (* every workload clusters well enough to beat hashed: the paper's
     break-even is 6 pages per block at factor 16 *)
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (spec.Workload.Spec.name ^ " above break-even")
        true
        (density spec > 6.0))
    Workload.Table1.all_with_kernel

let test_trace_only_touches_mapped_pages () =
  List.iter
    (fun spec ->
      let snap = Workload.Snapshot.generate spec ~seed:3L in
      let mapped = Hashtbl.create 4096 in
      List.iteri
        (fun i p ->
          Array.iter
            (fun vpn -> Hashtbl.replace mapped (i, vpn) ())
            (Workload.Snapshot.proc_vpns p))
        snap.Workload.Snapshot.procs;
      let trace = Workload.Trace.generate spec snap ~seed:4L ~length:5000 in
      Array.iter
        (function
          | Workload.Trace.Access (p, vpn) ->
              if not (Hashtbl.mem mapped (p, vpn)) then
                Alcotest.failf "%s touches unmapped page %Lx"
                  spec.Workload.Spec.name vpn
          | _ -> ())
        trace)
    Workload.Table1.all

let test_trace_length_and_determinism () =
  let spec = Workload.Table1.nasa7 in
  let snap = Workload.Snapshot.generate spec ~seed:3L in
  let t1 = Workload.Trace.generate spec snap ~seed:4L ~length:5000 in
  let t2 = Workload.Trace.generate spec snap ~seed:4L ~length:5000 in
  Alcotest.(check bool) "deterministic" true (t1 = t2);
  Alcotest.(check bool) "length reached" true
    (Workload.Trace.accesses t1 >= 5000)

let test_multiprog_switches () =
  let spec = Workload.Table1.gcc in
  let snap = Workload.Snapshot.generate spec ~seed:3L in
  let trace = Workload.Trace.generate spec snap ~seed:4L ~length:20000 in
  let switches =
    Array.fold_left
      (fun acc -> function Workload.Trace.Switch _ -> acc + 1 | _ -> acc)
      0 trace
  in
  Alcotest.(check bool) "several context switches" true (switches >= 4);
  (* all four processes get cpu time *)
  let seen = Hashtbl.create 4 in
  Array.iter
    (function
      | Workload.Trace.Access (p, _) -> Hashtbl.replace seen p ()
      | _ -> ())
    trace;
  Alcotest.(check int) "all processes run" 4 (Hashtbl.length seen)

let test_spec_lookup () =
  Alcotest.(check bool) "find coral" true (Workload.Table1.find "coral" <> None);
  Alcotest.(check bool) "find ML case-insensitive" true
    (Workload.Table1.find "ml" <> None);
  Alcotest.(check bool) "unknown" true (Workload.Table1.find "doom" = None);
  Alcotest.(check int) "ten workloads" 10 (List.length Workload.Table1.all)

let suite =
  ( "workload",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
      Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
      Alcotest.test_case "snapshot calibration" `Quick test_snapshot_calibration;
      Alcotest.test_case "hashed size matches Table 1" `Quick
        test_snapshot_hashed_size_matches_paper;
      Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
      Alcotest.test_case "no duplicate pages" `Quick test_snapshot_no_duplicates;
      Alcotest.test_case "density ordering" `Quick test_density_ordering;
      Alcotest.test_case "trace touches mapped pages only" `Quick
        test_trace_only_touches_mapped_pages;
      Alcotest.test_case "trace determinism" `Quick
        test_trace_length_and_determinism;
      Alcotest.test_case "multiprog switches" `Quick test_multiprog_switches;
      Alcotest.test_case "spec lookup" `Quick test_spec_lookup;
    ] )

let with_tmp f =
  let path = Filename.temp_file "ptsim" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_snapshot_roundtrip () =
  let snap = Workload.Snapshot.generate Workload.Table1.gcc ~seed:1L in
  with_tmp (fun path ->
      Workload.Snapshot.save snap path;
      let back = Workload.Snapshot.load path in
      Alcotest.(check bool) "identical" true (snap = back))

let test_trace_roundtrip () =
  let spec = Workload.Table1.compress in
  let snap = Workload.Snapshot.generate spec ~seed:1L in
  let trace = Workload.Trace.generate spec snap ~seed:2L ~length:2000 in
  with_tmp (fun path ->
      Workload.Trace.save trace path;
      let back = Workload.Trace.load path in
      Alcotest.(check bool) "identical" true (trace = back))

let test_load_rejects_garbage () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "A banana\n";
      close_out oc;
      match Workload.Trace.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")

(* every churn op kind survives a save/load round trip *)
let test_churn_trace_roundtrip () =
  let trace =
    [|
      Workload.Trace.Mmap (0, 0x1000L, 64);
      Workload.Trace.Touch (0, 0x1003L);
      Workload.Trace.Protect (0, 0x1000L, 16, false);
      Workload.Trace.Fork (0, 1);
      Workload.Trace.Touch (1, 0x1003L);
      Workload.Trace.Access (1, 0x1004L);
      Workload.Trace.Munmap (0, 0x1010L, 16);
      Workload.Trace.Switch (1);
      Workload.Trace.Protect (1, 0x1020L, 8, true);
      Workload.Trace.Exit 1;
      Workload.Trace.Exit 0;
    |]
  in
  with_tmp (fun path ->
      Workload.Trace.save trace path;
      let back = Workload.Trace.load path in
      Alcotest.(check bool) "identical" true (trace = back))

let test_load_rejects_unknown_version () =
  with_tmp (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "# ptsim-trace v%d\nA 0 10\n"
        (Workload.Trace.format_version + 1);
      close_out oc;
      match Workload.Trace.load path with
      | exception Failure msg ->
          Alcotest.(check bool) "message names the version" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected Failure on a future format version")

(* a headerless v1 file (written before the version header existed)
   still loads *)
let test_load_headerless_v1 () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "A 0 1f\nS 1\nA 1 2a\n";
      close_out oc;
      let back = Workload.Trace.load path in
      Alcotest.(check bool) "identical" true
        (back
        = [|
            Workload.Trace.Access (0, 0x1fL);
            Workload.Trace.Switch 1;
            Workload.Trace.Access (1, 0x2aL);
          |]))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "snapshot save/load" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "trace save/load" `Quick test_trace_roundtrip;
        Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
        Alcotest.test_case "churn trace save/load" `Quick
          test_churn_trace_roundtrip;
        Alcotest.test_case "load rejects unknown version" `Quick
          test_load_rejects_unknown_version;
        Alcotest.test_case "headerless v1 load" `Quick test_load_headerless_v1;
      ] )

(* random profiles always produce valid snapshots: exact page counts,
   no duplicates, all segment invariants *)
let prop_random_profiles_valid =
  let gen =
    QCheck.Gen.(
      int_range 50 800 >>= fun target ->
      float_range 0.0 0.9 >>= fun dense_frac ->
      float_range 0.0 0.15 >>= fun sparse_frac ->
      int_range 1 8 >>= fun lo ->
      int_range 0 16 >>= fun extra ->
      (* spread must comfortably fit the chunk/sparse budget, or
         placement legitimately fails with Invalid_argument *)
      int_range 13 18 >>= fun spread_bits ->
      return
        {
          Workload.Spec.name = "random";
          processes =
            [
              {
                Workload.Spec.pname = "p";
                target_pages = target;
                profile =
                  {
                    Workload.Spec.dense_frac;
                    chunk_pages = (lo, lo + extra);
                    sparse_frac;
                    spread_pages = Int64.shift_left 1L spread_bits;
                  };
              };
            ];
          trace = Workload.Spec.Pointer_chase;
          locality = 0.5;
          paper =
            {
              Workload.Spec.total_time_s = 0.;
              user_time_s = 0.;
              tlb_misses_k = 0;
              pct_tlb = 0;
              hashed_kb = 0;
            };
        })
  in
  QCheck.Test.make ~name:"random profiles generate valid snapshots" ~count:100
    (QCheck.make gen) (fun spec ->
      let snap = Workload.Snapshot.generate spec ~seed:77L in
      let pages = Workload.Snapshot.total_pages snap in
      let proc = List.hd snap.Workload.Snapshot.procs in
      let vpns = Workload.Snapshot.proc_vpns proc in
      let distinct =
        Array.to_list vpns |> List.sort_uniq Int64.unsigned_compare
      in
      pages = Workload.Spec.target_pages spec
      && List.length distinct = Array.length vpns
      && (* the trace generator also survives any profile *)
      Workload.Trace.accesses
        (Workload.Trace.generate spec snap ~seed:78L ~length:500)
      >= 500)

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest prop_random_profiles_valid ] )

let prop_proc_vpns_sorted =
  QCheck.Test.make ~name:"proc_vpns ascending for every workload" ~count:1
    QCheck.unit (fun () ->
      List.for_all
        (fun spec ->
          let snap = Workload.Snapshot.generate spec ~seed:4L in
          List.for_all
            (fun p ->
              let v = Workload.Snapshot.proc_vpns p in
              let ok = ref true in
              for i = 1 to Array.length v - 1 do
                if Int64.unsigned_compare v.(i - 1) v.(i) >= 0 then ok := false
              done;
              !ok)
            snap.Workload.Snapshot.procs)
        Workload.Table1.all_with_kernel)

let suite =
  ( fst suite, snd suite @ [ QCheck_alcotest.to_alcotest prop_proc_vpns_sorted ] )
