(* The clustered page table: the paper's central contribution. *)

module T = Clustered_pt.Table
module Config = Clustered_pt.Config
module Types = Pt_common.Types

let attr = Pte.Attr.default

let make ?(subblock_factor = 16) ?(buckets = 64) () =
  T.create (Config.make ~subblock_factor ~buckets ())

let instance ?subblock_factor ?buckets () =
  Pt_common.Intf.Instance ((module T), make ?subblock_factor ?buckets ())

(* --- basics --- *)

let test_insert_lookup () =
  let t = make () in
  T.insert_base t ~vpn:0x41034L ~ppn:0x123L ~attr;
  (match T.lookup t ~vpn:0x41034L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 0x123L tr.Types.ppn;
      Alcotest.(check bool) "base kind" true (tr.Types.kind = Types.Base);
      Alcotest.(check int) "one probe" 1 walk.Types.probes
  | None, _ -> Alcotest.fail "mapped page not found");
  Alcotest.(check bool) "neighbour in same block unmapped" true
    (fst (T.lookup t ~vpn:0x41035L) = None)

let test_one_node_per_block () =
  let t = make () in
  for i = 0 to 15 do
    T.insert_base t ~vpn:(Int64.of_int (0x40 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  Alcotest.(check int) "sixteen pages, one node" 1 (T.node_count t);
  Alcotest.(check int) "node is 144 bytes" 144 (T.size_bytes t);
  Alcotest.(check int) "population" 16 (T.population t)

let test_size_formula () =
  (* (8s + 16) * Nactive(s): the appendix's clustered size *)
  let t = make ~subblock_factor:8 () in
  T.insert_base t ~vpn:0L ~ppn:1L ~attr;
  T.insert_base t ~vpn:100L ~ppn:2L ~attr;
  T.insert_base t ~vpn:101L ~ppn:3L ~attr;
  Alcotest.(check int) "two blocks at 80 bytes" 160 (T.size_bytes t)

let test_walk_reads_match_figure8 () =
  (* after the tag match the handler reads mapping[0] (the S check)
     then mapping[Boff]: one extra 8-byte read for Boff <> 0 *)
  let t = make () in
  T.insert_base t ~vpn:0x100L ~ppn:1L ~attr;
  T.insert_base t ~vpn:0x105L ~ppn:2L ~attr;
  let _, walk0 = T.lookup t ~vpn:0x100L in
  let _, walk5 = T.lookup t ~vpn:0x105L in
  Alcotest.(check int) "boff 0 reads: tag+next, word0" 2
    (List.length walk0.Types.accesses);
  Alcotest.(check int) "boff 5 reads: tag+next, word0, word5" 3
    (List.length walk5.Types.accesses);
  (* all within one 256-byte line *)
  Alcotest.(check int) "still one line" 1 (Types.walk_lines walk5)

let test_empty_bucket_costs_one_line () =
  let t = make () in
  let _, walk = T.lookup t ~vpn:0xDEADL in
  Alcotest.(check int) "embedded head read" 1 (Types.walk_lines walk)

(* --- partial-subblock and superpage nodes (Figures 7/8) --- *)

let test_psb_node () =
  let t = make () in
  T.insert_psb t ~vpbn:5L ~vmask:0b1010 ~ppn:0x40L ~attr;
  Alcotest.(check int) "psb node is 24 bytes" 24 (T.size_bytes t);
  (match T.lookup t ~vpn:0x51L with
  | Some tr, _ ->
      Alcotest.(check int64) "ppn offset" 0x41L tr.Types.ppn;
      Alcotest.(check bool) "kind" true
        (tr.Types.kind = Types.Partial_subblock 0b1010)
  | None, _ -> Alcotest.fail "psb bit 1 should map");
  Alcotest.(check bool) "clear bit faults" true (fst (T.lookup t ~vpn:0x50L) = None)

let test_psb_merge () =
  let t = make () in
  T.insert_psb t ~vpbn:5L ~vmask:0b0011 ~ppn:0x40L ~attr;
  T.insert_psb t ~vpbn:5L ~vmask:0b1100 ~ppn:0x40L ~attr;
  Alcotest.(check int) "merged into one node" 1 (T.node_count t);
  Alcotest.(check int) "all four pages" 4 (T.population t)

let test_block_superpage_node () =
  let t = make () in
  T.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  Alcotest.(check int) "one 24-byte node" 24 (T.size_bytes t);
  (match T.lookup t ~vpn:0x4BL with
  | Some tr, _ ->
      Alcotest.(check int64) "ppn" 0x10BL tr.Types.ppn;
      Alcotest.(check int64) "vpn_base" 0x40L tr.Types.vpn_base;
      Alcotest.(check bool) "kind" true
        (tr.Types.kind = Types.Superpage Addr.Page_size.kb64)
  | None, _ -> Alcotest.fail "superpage page should map")

let test_large_superpage_replicates_per_block () =
  (* a 1 MB superpage = 256 pages = 16 blocks: sixteen 24-byte nodes,
     a factor of 16 less than conventional replication (Section 5) *)
  let t = make () in
  T.insert_superpage t ~vpn:0x100L ~size:Addr.Page_size.mb1 ~ppn:0x400L ~attr;
  Alcotest.(check int) "sixteen single nodes" 16 (T.node_count t);
  Alcotest.(check int) "384 bytes total" (16 * 24) (T.size_bytes t);
  (* any page resolves with the right offset *)
  (match T.lookup t ~vpn:0x1FFL with
  | Some tr, _ -> Alcotest.(check int64) "last page" 0x4FFL tr.Types.ppn
  | None, _ -> Alcotest.fail "should map");
  Alcotest.(check int) "population covers 256 pages" 256 (T.population t)

let test_small_superpage_in_block_node () =
  (* two 8 KB superpages inside one 16 KB block (factor 4) — the
     Section 5 example *)
  let t = make ~subblock_factor:4 () in
  T.insert_superpage t ~vpn:0x10L ~size:(Addr.Page_size.of_bytes 0x2000)
    ~ppn:0x20L ~attr;
  T.insert_superpage t ~vpn:0x12L ~size:(Addr.Page_size.of_bytes 0x2000)
    ~ppn:0x30L ~attr;
  Alcotest.(check int) "one block node" 1 (T.node_count t);
  (match T.lookup t ~vpn:0x11L with
  | Some tr, _ ->
      Alcotest.(check int64) "first sp maps" 0x21L tr.Types.ppn
  | None, _ -> Alcotest.fail "first 8KB sp");
  match T.lookup t ~vpn:0x12L with
  | Some tr, _ -> Alcotest.(check int64) "second sp maps" 0x30L tr.Types.ppn
  | None, _ -> Alcotest.fail "second 8KB sp"

let test_mixed_chain_continues_after_tag_match () =
  (* Section 5: a superpage node and a base node may share a tag; the
     handler keeps searching after a tag match with no valid mapping *)
  let t = make ~subblock_factor:4 () in
  (* base pages for offsets 2,3 *)
  T.insert_base t ~vpn:0x12L ~ppn:0x52L ~attr;
  T.insert_base t ~vpn:0x13L ~ppn:0x53L ~attr;
  (* an 8 KB superpage for offsets 0,1 as a psb node of the same tag *)
  T.insert_psb t ~vpbn:4L ~vmask:0b0011 ~ppn:0x40L ~attr;
  Alcotest.(check int) "two nodes share the tag" 2 (T.node_count t);
  let ppn_of vpn =
    match T.lookup t ~vpn with
    | Some tr, _ -> tr.Types.ppn
    | None, _ -> Alcotest.failf "vpn %Lx unmapped" vpn
  in
  Alcotest.(check int64) "psb page" 0x40L (ppn_of 0x10L);
  Alcotest.(check int64) "base page" 0x52L (ppn_of 0x12L)

(* --- removal --- *)

let test_remove_base () =
  let t = make () in
  T.insert_base t ~vpn:0x10L ~ppn:1L ~attr;
  T.insert_base t ~vpn:0x11L ~ppn:2L ~attr;
  T.remove t ~vpn:0x10L;
  Alcotest.(check bool) "removed" true (fst (T.lookup t ~vpn:0x10L) = None);
  Alcotest.(check bool) "sibling intact" true (fst (T.lookup t ~vpn:0x11L) <> None);
  T.remove t ~vpn:0x11L;
  Alcotest.(check int) "empty node freed" 0 (T.node_count t);
  Alcotest.(check int) "no bytes" 0 (T.size_bytes t)

let test_remove_psb_bitwise () =
  let t = make () in
  T.insert_psb t ~vpbn:2L ~vmask:0b11 ~ppn:0x20L ~attr;
  T.remove t ~vpn:0x20L;
  Alcotest.(check bool) "bit cleared" true (fst (T.lookup t ~vpn:0x20L) = None);
  Alcotest.(check bool) "other bit alive" true (fst (T.lookup t ~vpn:0x21L) <> None);
  T.remove t ~vpn:0x21L;
  Alcotest.(check int) "node gone at zero mask" 0 (T.node_count t)

let test_remove_superpage_whole () =
  let t = make () in
  T.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  T.remove t ~vpn:0x45L;
  Alcotest.(check bool) "whole superpage removed" true
    (fst (T.lookup t ~vpn:0x40L) = None);
  Alcotest.(check int) "node freed" 0 (T.node_count t)

(* --- range operations (Section 3.1) --- *)

let test_attr_range_one_search_per_block () =
  let t = make () in
  for i = 0 to 47 do
    T.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  let searches =
    T.set_attr_range t
      (Addr.Region.make ~first_vpn:0L ~pages:48)
      ~f:(fun a -> { a with Pte.Attr.writable = false })
  in
  Alcotest.(check int) "48 pages, 3 block searches" 3 searches;
  match T.lookup t ~vpn:20L with
  | Some tr, _ ->
      Alcotest.(check bool) "attr updated" false tr.Types.attr.Pte.Attr.writable
  | None, _ -> Alcotest.fail "page vanished"

let test_attr_range_partial_block () =
  let t = make () in
  for i = 0 to 15 do
    T.insert_base t ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  ignore
    (T.set_attr_range t
       (Addr.Region.make ~first_vpn:4L ~pages:4)
       ~f:(fun a -> { a with Pte.Attr.writable = false }));
  let writable vpn =
    match T.lookup t ~vpn with
    | Some tr, _ -> tr.Types.attr.Pte.Attr.writable
    | None, _ -> Alcotest.fail "unmapped"
  in
  Alcotest.(check bool) "below range untouched" true (writable 3L);
  Alcotest.(check bool) "in range updated" false (writable 5L);
  Alcotest.(check bool) "above range untouched" true (writable 8L)

(* --- promotion / demotion (Section 5) --- *)

let test_promotion () =
  let t = make () in
  for i = 0 to 15 do
    T.insert_base t ~vpn:(Int64.of_int (0x20 + i)) ~ppn:(Int64.of_int (0x40 + i))
      ~attr
  done;
  let summary = T.block_summary t ~vpn:0x25L in
  Alcotest.(check int) "full base vmask" 0xFFFF summary.T.base_vmask;
  Alcotest.(check (option int64)) "promotable" (Some 0x40L)
    summary.T.promotable_ppn;
  Alcotest.(check bool) "promote succeeds" true (T.promote_block t ~vpn:0x25L);
  Alcotest.(check int) "one 24-byte node after" 24 (T.size_bytes t);
  (match T.lookup t ~vpn:0x2FL with
  | Some tr, _ ->
      Alcotest.(check bool) "now a superpage" true
        (tr.Types.kind = Types.Superpage Addr.Page_size.kb64);
      Alcotest.(check int64) "ppn preserved" 0x4FL tr.Types.ppn
  | None, _ -> Alcotest.fail "promoted page unmapped");
  (* and back *)
  Alcotest.(check bool) "demote succeeds" true (T.demote_block t ~vpn:0x25L);
  match T.lookup t ~vpn:0x2FL with
  | Some tr, _ -> Alcotest.(check bool) "base again" true (tr.Types.kind = Types.Base)
  | None, _ -> Alcotest.fail "demoted page unmapped"

let test_promotion_refuses_improper () =
  let t = make () in
  for i = 0 to 15 do
    (* frames not block-contiguous *)
    T.insert_base t ~vpn:(Int64.of_int (0x20 + i)) ~ppn:(Int64.of_int (0x40 + (2 * i)))
      ~attr
  done;
  Alcotest.(check bool) "not promotable" false (T.promote_block t ~vpn:0x20L);
  Alcotest.(check bool) "partial block not promotable" false
    (let t2 = make () in
     T.insert_base t2 ~vpn:0x20L ~ppn:0x40L ~attr;
     T.promote_block t2 ~vpn:0x20L)

(* --- block prefetch (Section 4.4) --- *)

let test_lookup_block () =
  let t = make () in
  for i = 0 to 15 do
    if i mod 2 = 0 then
      T.insert_base t ~vpn:(Int64.of_int (0x60 + i)) ~ppn:(Int64.of_int (0x80 + i))
        ~attr
  done;
  let found, walk = T.lookup_block t ~vpn:0x63L ~subblock_factor:16 in
  Alcotest.(check int) "eight valid pages" 8 (List.length found);
  Alcotest.(check bool) "offsets are the even ones" true
    (List.for_all (fun (i, _) -> i mod 2 = 0) found);
  Alcotest.(check int) "one probe serves the block" 1 walk.Types.probes;
  (* a 144-byte node spans one 256-byte line *)
  Alcotest.(check int) "one line" 1 (Types.walk_lines walk);
  Alcotest.(check int) "two lines at 64B"
    3
    (Types.walk_lines ~line_size:64 walk)

(* --- chains and hashing --- *)

let test_chain_collisions () =
  (* one bucket: every block collides; lookup must still resolve *)
  let t = make ~buckets:1 () in
  for b = 0 to 9 do
    T.insert_base t ~vpn:(Int64.of_int (b * 16)) ~ppn:(Int64.of_int b) ~attr
  done;
  Alcotest.(check int) "chain holds all nodes" 10 (T.chain_length t ~bucket:0);
  Alcotest.(check (float 1e-9)) "load factor" 10.0 (T.load_factor t);
  for b = 0 to 9 do
    match T.lookup t ~vpn:(Int64.of_int (b * 16)) with
    | Some tr, _ -> Alcotest.(check int64) "resolves" (Int64.of_int b) tr.Types.ppn
    | None, _ -> Alcotest.fail "chained node lost"
  done

let test_clear () =
  let t = make () in
  for i = 0 to 99 do
    T.insert_base t ~vpn:(Int64.of_int (i * 16)) ~ppn:(Int64.of_int i) ~attr
  done;
  T.clear t;
  Alcotest.(check int) "no nodes" 0 (T.node_count t);
  Alcotest.(check int) "no bytes" 0 (T.size_bytes t);
  Alcotest.(check bool) "lookups fault" true (fst (T.lookup t ~vpn:0L) = None)

(* --- coarse (multi-size) tables and the two-table scheme --- *)

let test_coarse_table_rejects_base () =
  let t = T.create (Config.make ~page_shift:16 ()) in
  Alcotest.check_raises "base insert rejected"
    (Invalid_argument
       "Clustered_pt: base pages not representable in a coarse table")
    (fun () -> T.insert_base t ~vpn:0L ~ppn:0L ~attr)

let test_multi_size () =
  let m = Clustered_pt.Multi_size.create () in
  Clustered_pt.Multi_size.insert_base m ~vpn:0x10L ~ppn:0x1L ~attr;
  Clustered_pt.Multi_size.insert_superpage m ~vpn:0x100L
    ~size:Addr.Page_size.mb1 ~ppn:0x400L ~attr;
  (* the 1 MB superpage costs ONE coarse node, not 16 *)
  Alcotest.(check int) "coarse node count" 1
    (T.node_count (Clustered_pt.Multi_size.coarse m));
  (match Clustered_pt.Multi_size.lookup m ~vpn:0x10L with
  | Some tr, _ -> Alcotest.(check int64) "fine hit" 0x1L tr.Types.ppn
  | None, _ -> Alcotest.fail "fine lookup");
  (match Clustered_pt.Multi_size.lookup m ~vpn:0x1FFL with
  | Some tr, walk ->
      Alcotest.(check int64) "coarse hit" 0x4FFL tr.Types.ppn;
      (* probing fine first costs a (failed) fine walk *)
      Alcotest.(check bool) "two-table walk costs >= 2 lines" true
        (Types.walk_lines walk >= 2)
  | None, _ -> Alcotest.fail "coarse lookup");
  Clustered_pt.Multi_size.remove m ~vpn:0x1FFL;
  Alcotest.(check bool) "large superpage removed via coarse" true
    (fst (Clustered_pt.Multi_size.lookup m ~vpn:0x1FFL) = None)

(* --- bucket locks (Section 3.1) --- *)

let test_bucket_lock_protocol () =
  let l = Clustered_pt.Bucket_lock.create ~buckets:8 in
  Clustered_pt.Bucket_lock.acquire l ~bucket:3 Clustered_pt.Bucket_lock.Read;
  Clustered_pt.Bucket_lock.acquire l ~bucket:3 Clustered_pt.Bucket_lock.Read;
  Alcotest.(check int) "readers share" 2
    (Clustered_pt.Bucket_lock.read_acquisitions l);
  Alcotest.check_raises "writer blocked by readers"
    (Clustered_pt.Bucket_lock.Deadlock 3) (fun () ->
      Clustered_pt.Bucket_lock.acquire l ~bucket:3 Clustered_pt.Bucket_lock.Write);
  Clustered_pt.Bucket_lock.release l ~bucket:3 Clustered_pt.Bucket_lock.Read;
  Clustered_pt.Bucket_lock.release l ~bucket:3 Clustered_pt.Bucket_lock.Read;
  Clustered_pt.Bucket_lock.with_lock l ~bucket:3 Clustered_pt.Bucket_lock.Write
    (fun () ->
      Alcotest.check_raises "no second writer"
        (Clustered_pt.Bucket_lock.Deadlock 3) (fun () ->
          Clustered_pt.Bucket_lock.acquire l ~bucket:3
            Clustered_pt.Bucket_lock.Write));
  Alcotest.(check int) "all released" 0
    (Clustered_pt.Bucket_lock.currently_held l)

(* --- properties --- *)

let prop_model = Pt_model.model_test ~name:"clustered agrees with model"
    ~make:(fun () -> instance ())

let prop_drain = Pt_model.drain_test ~name:"clustered drains to empty"
    ~make:(fun () -> instance ())

let prop_size_formula =
  QCheck.Test.make ~name:"size always equals (8s+16) * nodes" ~count:100
    (Pt_model.ops_arbitrary ~vpn_space:300 ~len:100)
    (fun ops ->
      let t = make () in
      List.iter
        (function
          | Pt_model.Insert (vpn, ppn) -> T.insert_base t ~vpn ~ppn ~attr
          | Pt_model.Remove vpn -> T.remove t ~vpn)
        ops;
      T.size_bytes t = T.node_count t * 144)

let suite =
  ( "clustered",
    [
      Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
      Alcotest.test_case "one node per block" `Quick test_one_node_per_block;
      Alcotest.test_case "size formula" `Quick test_size_formula;
      Alcotest.test_case "walk reads (Figure 8)" `Quick
        test_walk_reads_match_figure8;
      Alcotest.test_case "empty bucket costs a line" `Quick
        test_empty_bucket_costs_one_line;
      Alcotest.test_case "psb node" `Quick test_psb_node;
      Alcotest.test_case "psb merge" `Quick test_psb_merge;
      Alcotest.test_case "block superpage node" `Quick test_block_superpage_node;
      Alcotest.test_case "large superpage replication" `Quick
        test_large_superpage_replicates_per_block;
      Alcotest.test_case "small superpages in block node" `Quick
        test_small_superpage_in_block_node;
      Alcotest.test_case "mixed chain (Section 5)" `Quick
        test_mixed_chain_continues_after_tag_match;
      Alcotest.test_case "remove base" `Quick test_remove_base;
      Alcotest.test_case "remove psb bit" `Quick test_remove_psb_bitwise;
      Alcotest.test_case "remove superpage" `Quick test_remove_superpage_whole;
      Alcotest.test_case "range op: one search per block" `Quick
        test_attr_range_one_search_per_block;
      Alcotest.test_case "range op: partial block" `Quick
        test_attr_range_partial_block;
      Alcotest.test_case "promotion/demotion" `Quick test_promotion;
      Alcotest.test_case "promotion refused" `Quick test_promotion_refuses_improper;
      Alcotest.test_case "block prefetch" `Quick test_lookup_block;
      Alcotest.test_case "chain collisions" `Quick test_chain_collisions;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "coarse table" `Quick test_coarse_table_rejects_base;
      Alcotest.test_case "multi-size two tables" `Quick test_multi_size;
      Alcotest.test_case "bucket locks" `Quick test_bucket_lock_protocol;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_drain;
      QCheck_alcotest.to_alcotest prop_size_formula;
    ] )

(* --- clustered software TLB (TSB) --- *)

module Tsb = Clustered_pt.Clustered_tsb

let test_tsb_hit_one_slot_read () =
  let t = Tsb.create ~slots:64 () in
  Tsb.insert_base t ~vpn:0x40L ~ppn:0x80L ~attr;
  (* first lookup misses the (invalidated) slot and refills it *)
  ignore (Tsb.lookup t ~vpn:0x40L);
  match Tsb.lookup t ~vpn:0x40L with
  | Some tr, walk ->
      Alcotest.(check int64) "ppn" 0x80L tr.Types.ppn;
      Alcotest.(check int) "one line on a TSB hit" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let test_tsb_block_coverage_after_block_refill () =
  let t = Tsb.create ~slots:64 () in
  for i = 0 to 15 do
    Tsb.insert_base t ~vpn:(Int64.of_int (0x40 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  (* one block lookup warms the whole slot *)
  let found, _ = Tsb.lookup_block t ~vpn:0x43L ~subblock_factor:16 in
  Alcotest.(check int) "block gathered" 16 (List.length found);
  ignore (Tsb.lookup t ~vpn:0x44L);
  let before = Tsb.tsb_hits t in
  (* after the single-page refill path, at least that page hits *)
  ignore (Tsb.lookup t ~vpn:0x44L);
  Alcotest.(check bool) "page hits after refill" true (Tsb.tsb_hits t > before)

let test_tsb_conflict_eviction () =
  let t = Tsb.create ~slots:64 () in
  (* blocks 0 and 64 conflict in a 64-slot TSB *)
  Tsb.insert_base t ~vpn:0x5L ~ppn:0x1L ~attr;
  Tsb.insert_base t ~vpn:(Int64.of_int ((64 * 16) + 5)) ~ppn:0x2L ~attr;
  ignore (Tsb.lookup t ~vpn:0x5L);
  ignore (Tsb.lookup t ~vpn:(Int64.of_int ((64 * 16) + 5)));
  (* both remain resolvable through the backing table *)
  (match Tsb.lookup t ~vpn:0x5L with
  | Some tr, _ -> Alcotest.(check int64) "evicted still resolves" 0x1L tr.Types.ppn
  | None, _ -> Alcotest.fail "lost after conflict");
  Alcotest.(check bool) "misses were counted" true (Tsb.tsb_misses t >= 2)

let test_tsb_psb_and_superpage_slots () =
  let t = Tsb.create ~slots:64 () in
  Tsb.insert_psb t ~vpbn:2L ~vmask:0b101 ~ppn:0x20L ~attr;
  ignore (Tsb.lookup t ~vpn:0x22L);
  (match Tsb.lookup t ~vpn:0x22L with
  | Some tr, walk ->
      Alcotest.(check bool) "psb kind" true
        (match tr.Types.kind with Types.Partial_subblock _ -> true | _ -> false);
      Alcotest.(check int) "hit costs a line" 1 (Types.walk_lines walk)
  | None, _ -> Alcotest.fail "psb slot");
  Tsb.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  ignore (Tsb.lookup t ~vpn:0x4AL);
  match Tsb.lookup t ~vpn:0x4AL with
  | Some tr, _ -> Alcotest.(check int64) "sp offset" 0x10AL tr.Types.ppn
  | None, _ -> Alcotest.fail "sp slot"

let test_tsb_invalidate_on_update () =
  let t = Tsb.create ~slots:64 () in
  Tsb.insert_base t ~vpn:0x40L ~ppn:0x80L ~attr;
  ignore (Tsb.lookup t ~vpn:0x40L);
  ignore (Tsb.lookup t ~vpn:0x40L);
  (* remap: the stale slot must not serve the old frame *)
  Tsb.insert_base t ~vpn:0x40L ~ppn:0x99L ~attr;
  (match Tsb.lookup t ~vpn:0x40L with
  | Some tr, _ -> Alcotest.(check int64) "fresh frame" 0x99L tr.Types.ppn
  | None, _ -> Alcotest.fail "remap lost");
  Tsb.remove t ~vpn:0x40L;
  Alcotest.(check bool) "removed everywhere" true
    (fst (Tsb.lookup t ~vpn:0x40L) = None);
  Alcotest.(check int) "reach" (64 * 16) (Tsb.reach_pages t)

let prop_tsb_model =
  Pt_model.model_test ~name:"clustered TSB agrees with model" ~make:(fun () ->
      Pt_common.Intf.Instance ((module Tsb), Tsb.create ~slots:64 ()))

let prop_tsb_mixed =
  Pt_model.mixed_model_test ~name:"clustered TSB mixed ops" ~make:(fun () ->
      Pt_common.Intf.Instance ((module Tsb), Tsb.create ~slots:64 ()))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "TSB: hit is one slot read" `Quick
          test_tsb_hit_one_slot_read;
        Alcotest.test_case "TSB: block coverage" `Quick
          test_tsb_block_coverage_after_block_refill;
        Alcotest.test_case "TSB: conflict eviction" `Quick
          test_tsb_conflict_eviction;
        Alcotest.test_case "TSB: psb/superpage slots" `Quick
          test_tsb_psb_and_superpage_slots;
        Alcotest.test_case "TSB: invalidate on update" `Quick
          test_tsb_invalidate_on_update;
        QCheck_alcotest.to_alcotest prop_tsb_model;
        QCheck_alcotest.to_alcotest prop_tsb_mixed;
      ] )

(* --- variable subblock factors ([Tall95], Section 3) --- *)

module V = Clustered_pt.Var_table

let vmake () = V.create ~buckets:64 ()

let test_var_sparse_uses_quarter_nodes () =
  let t = vmake () in
  V.insert_base t ~vpn:0x41L ~ppn:0x1L ~attr;
  (* one isolated page: a 48-byte quarter node, not 144 *)
  Alcotest.(check int) "48 bytes" 48 (V.size_bytes t);
  Alcotest.(check int) "one quarter node" 1 (V.quarter_nodes t);
  match V.lookup t ~vpn:0x41L with
  | Some tr, walk ->
      Alcotest.(check int64) "resolves" 0x1L tr.Pt_common.Types.ppn;
      Alcotest.(check int) "one line" 1 (Pt_common.Types.walk_lines walk)
  | None, _ -> Alcotest.fail "not found"

let test_var_merge_to_full () =
  let t = vmake () in
  (* fill three different quarters of one block: merges to a full node *)
  V.insert_base t ~vpn:0x40L ~ppn:0x0L ~attr;
  V.insert_base t ~vpn:0x44L ~ppn:0x4L ~attr;
  Alcotest.(check int) "two quarters" 2 (V.quarter_nodes t);
  V.insert_base t ~vpn:0x48L ~ppn:0x8L ~attr;
  Alcotest.(check int) "merged" 0 (V.quarter_nodes t);
  Alcotest.(check int) "one full node" 1 (V.full_nodes t);
  Alcotest.(check int) "144 bytes" 144 (V.size_bytes t);
  (* everything still resolves *)
  List.iter
    (fun (vpn, ppn) ->
      match V.lookup t ~vpn with
      | Some tr, _ -> Alcotest.(check int64) "kept" ppn tr.Pt_common.Types.ppn
      | None, _ -> Alcotest.fail "lost in merge")
    [ (0x40L, 0x0L); (0x44L, 0x4L); (0x48L, 0x8L) ]

let test_var_quarter_miss_continues_chain () =
  let t = vmake () in
  V.insert_base t ~vpn:0x40L ~ppn:0x1L ~attr;
  (* same block, other quarter: second quarter node on the chain *)
  V.insert_base t ~vpn:0x4FL ~ppn:0xFL ~attr;
  Alcotest.(check int) "two quarters" 2 (V.quarter_nodes t);
  (match V.lookup t ~vpn:0x4FL with
  | Some tr, _ -> Alcotest.(check int64) "far quarter" 0xFL tr.Pt_common.Types.ppn
  | None, _ -> Alcotest.fail "far quarter lost");
  (* a page in a covered quarter but an unmapped slot faults *)
  Alcotest.(check bool) "unmapped slot faults" true
    (fst (V.lookup t ~vpn:0x41L) = None)

let test_var_sparse_vs_fixed_size () =
  (* the point of the feature: sparse blocks cost a third *)
  let fixed = make () and var = vmake () in
  for b = 0 to 19 do
    T.insert_base fixed ~vpn:(Int64.of_int (b * 16)) ~ppn:(Int64.of_int b) ~attr;
    V.insert_base var ~vpn:(Int64.of_int (b * 16)) ~ppn:(Int64.of_int b) ~attr
  done;
  Alcotest.(check int) "fixed: 20 x 144" (20 * 144) (T.size_bytes fixed);
  Alcotest.(check int) "variable: 20 x 48" (20 * 48) (V.size_bytes var);
  (* dense blocks converge to the same cost *)
  let fixed = make () and var = vmake () in
  for i = 0 to 15 do
    T.insert_base fixed ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr;
    V.insert_base var ~vpn:(Int64.of_int i) ~ppn:(Int64.of_int i) ~attr
  done;
  Alcotest.(check int) "dense equal" (T.size_bytes fixed) (V.size_bytes var)

let test_var_psb_and_superpage () =
  let t = vmake () in
  V.insert_psb t ~vpbn:2L ~vmask:0b11 ~ppn:0x20L ~attr;
  V.insert_superpage t ~vpn:0x40L ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr;
  (match V.lookup t ~vpn:0x21L with
  | Some tr, _ -> Alcotest.(check int64) "psb" 0x21L tr.Pt_common.Types.ppn
  | None, _ -> Alcotest.fail "psb");
  (match V.lookup t ~vpn:0x4AL with
  | Some tr, _ -> Alcotest.(check int64) "sp" 0x10AL tr.Pt_common.Types.ppn
  | None, _ -> Alcotest.fail "sp");
  (* an 8 KB superpage inside one quarter costs 48 bytes *)
  let t2 = vmake () in
  V.insert_superpage t2 ~vpn:0x80L ~size:(Addr.Page_size.of_bytes 0x2000)
    ~ppn:0x200L ~attr;
  Alcotest.(check int) "small sp in a quarter" 48 (V.size_bytes t2)

let prop_var_model =
  Pt_model.model_test ~name:"variable-factor table agrees with model"
    ~make:(fun () -> Pt_common.Intf.Instance ((module V), vmake ()))

let prop_var_mixed =
  Pt_model.mixed_model_test ~name:"variable-factor table mixed ops"
    ~make:(fun () -> Pt_common.Intf.Instance ((module V), vmake ()))

let prop_var_drain =
  Pt_model.drain_test ~name:"variable-factor table drains"
    ~make:(fun () -> Pt_common.Intf.Instance ((module V), vmake ()))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "var: sparse quarter nodes" `Quick
          test_var_sparse_uses_quarter_nodes;
        Alcotest.test_case "var: merge to full" `Quick test_var_merge_to_full;
        Alcotest.test_case "var: chain continues" `Quick
          test_var_quarter_miss_continues_chain;
        Alcotest.test_case "var: sparse vs fixed size" `Quick
          test_var_sparse_vs_fixed_size;
        Alcotest.test_case "var: psb/superpage" `Quick test_var_psb_and_superpage;
        QCheck_alcotest.to_alcotest prop_var_model;
        QCheck_alcotest.to_alcotest prop_var_mixed;
        QCheck_alcotest.to_alcotest prop_var_drain;
      ] )

(* --- the real multicore readers-writer lock (Section 3.1) --- *)

module RL = Clustered_pt.Bucket_lock.Real

let test_real_rwlock_excludes_writers () =
  (* four domains each do 5000 guarded increments of a shared counter:
     mutual exclusion makes the total exact *)
  let l = RL.create ~buckets:4 in
  let counter = ref 0 in
  let worker () =
    for i = 0 to 4999 do
      RL.with_write l ~bucket:(i land 3) (fun () -> incr counter)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 20000 !counter

let test_real_rwlock_readers_share_with_writer () =
  (* readers run concurrently with an interleaved writer; every reader
     observes a consistent (fully-written) value *)
  let l = RL.create ~buckets:1 in
  let a = ref 0 and b = ref 0 in
  let bad = Atomic.make 0 in
  let writer () =
    for i = 1 to 2000 do
      RL.with_write l ~bucket:0 (fun () ->
          a := i;
          b := i)
    done
  in
  let reader () =
    for _ = 1 to 2000 do
      RL.with_read l ~bucket:0 (fun () ->
          if !a <> !b then Atomic.incr bad)
    done
  in
  let ds =
    Domain.spawn writer :: List.init 3 (fun _ -> Domain.spawn reader)
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get bad)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "real rwlock: writers exclusive" `Slow
          test_real_rwlock_excludes_writers;
        Alcotest.test_case "real rwlock: consistent reads" `Slow
          test_real_rwlock_readers_share_with_writer;
      ] )

(* --- two-table interplay with large superpages --- *)

let test_multi_size_mixed_population () =
  let m = Clustered_pt.Multi_size.create () in
  (* a 1 MB superpage, a 64 KB superpage, loose base pages *)
  Clustered_pt.Multi_size.insert_superpage m ~vpn:0x400L
    ~size:Addr.Page_size.mb1 ~ppn:0x400L ~attr;
  Clustered_pt.Multi_size.insert_superpage m ~vpn:0x100L
    ~size:Addr.Page_size.kb64 ~ppn:0x200L ~attr;
  Clustered_pt.Multi_size.insert_base m ~vpn:0x10L ~ppn:0x1L ~attr;
  Alcotest.(check int) "population sums all granularities" (256 + 16 + 1)
    (Clustered_pt.Multi_size.population m);
  (* range op across both tables *)
  let searches =
    Clustered_pt.Multi_size.set_attr_range m
      (Addr.Region.make ~first_vpn:0x400L ~pages:256)
      ~f:(fun a -> { a with Pte.Attr.writable = false })
  in
  Alcotest.(check bool) "searched both tables" true (searches >= 2);
  (match Clustered_pt.Multi_size.lookup m ~vpn:0x4FFL with
  | Some tr, _ ->
      Alcotest.(check bool) "range applied through the coarse table" false
        tr.Pt_common.Types.attr.Pte.Attr.writable
  | None, _ -> Alcotest.fail "coarse mapping lost");
  Clustered_pt.Multi_size.clear m;
  Alcotest.(check int) "clear empties both" 0
    (Clustered_pt.Multi_size.population m)

let test_tsb_block_prefetch_path () =
  (* the csb-prefetch entry point through the TSB: one slot read when
     warm, backing block walk when cold *)
  let t = Tsb.create ~slots:64 () in
  for i = 0 to 15 do
    Tsb.insert_base t ~vpn:(Int64.of_int (0x80 + i)) ~ppn:(Int64.of_int i) ~attr
  done;
  let found, _cold = Tsb.lookup_block t ~vpn:0x85L ~subblock_factor:16 in
  Alcotest.(check int) "cold gathers all sixteen" 16 (List.length found);
  let found, warm = Tsb.lookup_block t ~vpn:0x85L ~subblock_factor:16 in
  Alcotest.(check int) "warm gathers all sixteen" 16 (List.length found);
  Alcotest.(check int) "warm costs one slot read" 1
    (List.length warm.Types.accesses)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "multi-size mixed population" `Quick
          test_multi_size_mixed_population;
        Alcotest.test_case "TSB block prefetch path" `Quick
          test_tsb_block_prefetch_path;
      ] )

let test_tsb_attr_range_invalidates () =
  let t = Tsb.create ~slots:64 () in
  Tsb.insert_base t ~vpn:0x40L ~ppn:0x80L ~attr;
  ignore (Tsb.lookup t ~vpn:0x40L);
  ignore (Tsb.lookup t ~vpn:0x40L);
  (* range op updates the backing and must not leave a stale slot *)
  ignore
    (Tsb.set_attr_range t
       (Addr.Region.make ~first_vpn:0x40L ~pages:1)
       ~f:(fun a -> { a with Pte.Attr.writable = false }));
  match Tsb.lookup t ~vpn:0x40L with
  | Some tr, _ ->
      Alcotest.(check bool) "fresh attr served" false
        tr.Types.attr.Pte.Attr.writable
  | None, _ -> Alcotest.fail "mapping lost"

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "TSB attr range invalidates" `Quick
          test_tsb_attr_range_invalidates;
      ] )

(* promotion and demotion round-trip: every translation survives *)
let prop_promote_demote_roundtrip =
  QCheck.Test.make ~name:"promote/demote preserves translations" ~count:100
    QCheck.(pair (int_bound 0xFFF) (int_bound 0xFF))
    (fun (block, frame_block) ->
      let t = make ~buckets:64 () in
      let base_vpn = Int64.of_int (block * 16) in
      let base_ppn = Int64.of_int (frame_block * 16) in
      for i = 0 to 15 do
        T.insert_base t
          ~vpn:(Int64.add base_vpn (Int64.of_int i))
          ~ppn:(Int64.add base_ppn (Int64.of_int i))
          ~attr
      done;
      let snapshot () =
        List.init 16 (fun i ->
            match T.lookup t ~vpn:(Int64.add base_vpn (Int64.of_int i)) with
            | Some tr, _ -> Some tr.Types.ppn
            | None, _ -> None)
      in
      let before = snapshot () in
      let promoted = T.promote_block t ~vpn:base_vpn in
      let mid = snapshot () in
      let demoted = T.demote_block t ~vpn:base_vpn in
      let after = snapshot () in
      promoted && demoted && before = mid && mid = after
      && T.size_bytes t = 144)

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest prop_promote_demote_roundtrip ] )
