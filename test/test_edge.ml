(* Edge cases and argument validation across the libraries: the error
   paths an OS developer would hit first. *)

module Types = Pt_common.Types

let attr = Pte.Attr.default

let raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: expected Invalid_argument" name)

let validation_cases =
  [
    raises_invalid "attr soft out of range" (fun () ->
        Pte.Attr.to_bits { attr with Pte.Attr.soft = 16 });
    raises_invalid "page size below 4KB" (fun () -> Addr.Page_size.of_shift 11);
    raises_invalid "page size of 3 bytes" (fun () -> Addr.Page_size.of_bytes 3);
    raises_invalid "negative region" (fun () ->
        Addr.Region.make ~first_vpn:0L ~pages:(-1));
    raises_invalid "non-pow2 subblock factor" (fun () ->
        Addr.Vaddr.vpbn_of_vpn ~subblock_factor:12 0L);
    raises_invalid "boff out of factor" (fun () ->
        Addr.Vaddr.vpn_of_vpbn ~subblock_factor:4 0L ~boff:4);
    raises_invalid "sim memory zero bytes" (fun () ->
        Mem.Sim_memory.alloc (Mem.Sim_memory.create ()) ~bytes:0 ~align:8);
    raises_invalid "sim memory non-pow2 align" (fun () ->
        Mem.Sim_memory.alloc (Mem.Sim_memory.create ()) ~bytes:8 ~align:24);
    raises_invalid "cache model non-pow2 line" (fun () ->
        Mem.Cache_model.distinct_lines ~line_size:100 []);
    raises_invalid "cache sim zero ways" (fun () ->
        Mem.Cache_sim.create ~sets:4 ~ways:0 ());
    raises_invalid "buddy bad total" (fun () ->
        Mem.Buddy.create ~total_pages:17 ~max_order:4);
    raises_invalid "buddy misaligned free" (fun () ->
        let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 in
        Mem.Buddy.free b ~ppn:1L ~order:2);
    raises_invalid "phys alloc non-pow2 factor" (fun () ->
        Mem.Phys_alloc.create ~total_pages:64 ~subblock_factor:10);
    raises_invalid "phys alloc unknown free" (fun () ->
        let a = Mem.Phys_alloc.create ~total_pages:64 ~subblock_factor:16 in
        Mem.Phys_alloc.free_page a ~vpn:0L ~ppn:7L);
    raises_invalid "clustered config factor 32" (fun () ->
        Clustered_pt.Config.make ~subblock_factor:32 ());
    raises_invalid "clustered config buckets 3" (fun () ->
        Clustered_pt.Config.make ~buckets:3 ());
    raises_invalid "clustered unaligned superpage" (fun () ->
        let t = Clustered_pt.Table.create Clustered_pt.Config.default in
        Clustered_pt.Table.insert_superpage t ~vpn:0x41L
          ~size:Addr.Page_size.kb64 ~ppn:0x100L ~attr);
    raises_invalid "clustered psb vmask too wide" (fun () ->
        let t =
          Clustered_pt.Table.create
            (Clustered_pt.Config.make ~subblock_factor:4 ())
        in
        Clustered_pt.Table.insert_psb t ~vpbn:0L ~vmask:0x10 ~ppn:0L ~attr);
    raises_invalid "hashed buckets non-pow2" (fun () ->
        Baselines.Hashed_pt.create ~buckets:100 ());
    raises_invalid "linear too many levels" (fun () ->
        Baselines.Linear_pt.create ~levels:9 ());
    raises_invalid "fm single level" (fun () ->
        Baselines.Forward_mapped_pt.create ~bits_per_level:[| 8 |] ());
    raises_invalid "tlb zero entries" (fun () ->
        Tlb.Fa_tlb.create ~entries:0 ());
    raises_invalid "tagged tlb asid bits" (fun () ->
        Tlb.Tagged_tlb.create ~asid_bits:13 (Tlb.Intf.fa ()));
    raises_invalid "tsb slots non-pow2" (fun () ->
        Clustered_pt.Clustered_tsb.create ~slots:100 ());
    raises_invalid "swtlb ways > entries" (fun () ->
        Baselines.Software_tlb.create ~entries:4 ~ways:8 ());
    raises_invalid "bucket lock release unheld" (fun () ->
        let l = Clustered_pt.Bucket_lock.create ~buckets:2 in
        Clustered_pt.Bucket_lock.release l ~bucket:0 Clustered_pt.Bucket_lock.Read);
  ]

(* --- semantic edge cases --- *)

let test_walk_join_orders_accesses () =
  let a = Types.walk_read Types.empty_walk ~addr:0L ~bytes:8 in
  let b = Types.walk_read Types.empty_walk ~addr:512L ~bytes:8 in
  let j = Types.walk_join a b in
  Alcotest.(check int) "accesses merged" 2 (List.length j.Types.accesses);
  Alcotest.(check int) "lines merged" 2 (Types.walk_lines j);
  let j2 = Types.walk_join (Types.walk_probe a) (Types.walk_probe b) in
  Alcotest.(check int) "probes added" 2 j2.Types.probes

let test_covered_pages () =
  let base = Types.base_translation ~vpn:1L ~ppn:2L ~attr in
  Alcotest.(check int) "base covers one" 1 (Types.covered_pages base);
  let sp = { base with Types.kind = Types.Superpage Addr.Page_size.kb64 } in
  Alcotest.(check int) "64KB covers sixteen" 16 (Types.covered_pages sp);
  let psb = { base with Types.kind = Types.Partial_subblock 0b1011 } in
  Alcotest.(check int) "psb covers its bits" 3 (Types.covered_pages psb)

let test_lookup_is_pure () =
  (* a lookup must not change future lookup costs (no splaying) *)
  let t = Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:1 ()) in
  for b = 0 to 7 do
    Clustered_pt.Table.insert_base t ~vpn:(Int64.of_int (b * 16)) ~ppn:0L ~attr
  done;
  let cost vpn = (snd (Clustered_pt.Table.lookup t ~vpn)).Types.probes in
  let first = cost 0L in
  for _ = 1 to 5 do
    ignore (cost 0L)
  done;
  Alcotest.(check int) "repeat lookups cost the same" first (cost 0L)

let test_remove_nonexistent_is_noop () =
  let check_pt name pt =
    Pt_common.Intf.remove pt ~vpn:0x1234L;
    Alcotest.(check int) (name ^ " unchanged") 0 (Pt_common.Intf.population pt)
  in
  check_pt "clustered" (Sim.Factory.make Sim.Factory.clustered16);
  check_pt "hashed" (Sim.Factory.make Sim.Factory.Hashed);
  check_pt "linear" (Sim.Factory.make Sim.Factory.Linear1);
  check_pt "fm" (Sim.Factory.make Sim.Factory.Forward_mapped);
  check_pt "var" (Sim.Factory.make Sim.Factory.Clustered_variable)

let test_reinsert_overwrites () =
  List.iter
    (fun kind ->
      let pt = Sim.Factory.make kind in
      Pt_common.Intf.insert_base pt ~vpn:5L ~ppn:1L ~attr;
      Pt_common.Intf.insert_base pt ~vpn:5L ~ppn:2L ~attr;
      (match Pt_common.Intf.lookup pt ~vpn:5L with
      | Some tr, _ ->
          Alcotest.(check int64)
            (Sim.Factory.name kind ^ " remap wins")
            2L tr.Types.ppn
      | None, _ -> Alcotest.fail "lost");
      Alcotest.(check int)
        (Sim.Factory.name kind ^ " population still one")
        1
        (Pt_common.Intf.population pt))
    [
      Sim.Factory.clustered16;
      Sim.Factory.Hashed;
      Sim.Factory.Linear1;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Inverted;
      Sim.Factory.Clustered_variable;
    ]

let test_max_ppn_roundtrip () =
  (* the largest legal PPN survives every format *)
  let ppn = Addr.Paddr.max_ppn in
  let t = Clustered_pt.Table.create Clustered_pt.Config.default in
  Clustered_pt.Table.insert_base t ~vpn:0L ~ppn ~attr;
  (match Clustered_pt.Table.lookup t ~vpn:0L with
  | Some tr, _ -> Alcotest.(check int64) "max ppn" ppn tr.Types.ppn
  | None, _ -> Alcotest.fail "lost");
  let block_ppn = Addr.Bits.align_down ppn 4 in
  Clustered_pt.Table.insert_psb t ~vpbn:9L ~vmask:1 ~ppn:block_ppn ~attr;
  match Clustered_pt.Table.lookup t ~vpn:(Int64.of_int (9 * 16)) with
  | Some tr, _ -> Alcotest.(check int64) "max block ppn" block_ppn tr.Types.ppn
  | None, _ -> Alcotest.fail "psb lost"

let test_high_vpn_space () =
  (* 52-bit VPNs (the full 64-bit address space) work everywhere *)
  let vpn = 0xF_FFFF_FFFF_FFFFL in
  List.iter
    (fun kind ->
      let pt = Sim.Factory.make kind in
      Pt_common.Intf.insert_base pt ~vpn ~ppn:1L ~attr;
      match Pt_common.Intf.lookup pt ~vpn with
      | Some tr, _ ->
          Alcotest.(check int64) (Sim.Factory.name kind) 1L tr.Types.ppn
      | None, _ -> Alcotest.failf "%s lost the top of the space" (Sim.Factory.name kind))
    [
      Sim.Factory.clustered16;
      Sim.Factory.Hashed;
      Sim.Factory.Linear1;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Clustered_variable;
    ]

let test_prng_shuffle_permutes () =
  let rng = Workload.Prng.create ~seed:3L in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Workload.Prng.shuffle rng b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b));
  Alcotest.(check bool) "actually permuted" true (a <> b)

let test_report_formatting () =
  Alcotest.(check string) "ratio" "0.48" (Sim.Report.ratio 0.478);
  Alcotest.(check string) "truncation" ">5.00" (Sim.Report.ratio 12.0);
  Alcotest.(check string) "kb" "1.5KB" (Sim.Report.kb 1536)

let suite =
  ( "edge cases",
    validation_cases
    @ [
        Alcotest.test_case "walk join" `Quick test_walk_join_orders_accesses;
        Alcotest.test_case "covered pages" `Quick test_covered_pages;
        Alcotest.test_case "lookup purity" `Quick test_lookup_is_pure;
        Alcotest.test_case "remove nonexistent" `Quick
          test_remove_nonexistent_is_noop;
        Alcotest.test_case "reinsert overwrites" `Quick test_reinsert_overwrites;
        Alcotest.test_case "max PPN roundtrip" `Quick test_max_ppn_roundtrip;
        Alcotest.test_case "top of the 64-bit space" `Quick test_high_vpn_space;
        Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "report formatting" `Quick test_report_formatting;
      ] )
