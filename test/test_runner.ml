(* Smoke tests of the experiment runner: every table, figure and
   ablation executes end-to-end on reduced inputs and returns sane
   values.  (Figure-shape assertions live in test_sim.ml.) *)

let options =
  {
    Sim.Runner.seed = 0xAAAL;
    length = 8_000;
    placement_p = 0.9;
    quick = true;
  }

let test_table1 () =
  let rows = Sim.Runner.table1 ~options () in
  Alcotest.(check int) "quick mode runs three workloads" 3 (List.length rows);
  List.iter
    (fun (name, misses, pct, bytes) ->
      Alcotest.(check bool) (name ^ " misses positive") true (misses > 0);
      Alcotest.(check bool) (name ^ " pct in range") true
        (pct > 0.0 && pct < 100.0);
      Alcotest.(check bool) (name ^ " hashed bytes") true (bytes > 0))
    rows

let test_table2 () = Sim.Runner.table2 ~options ()

let test_figure11_all_designs () =
  List.iter
    (fun design ->
      let runs = Sim.Runner.figure11 ~options ~design () in
      List.iter
        (fun run ->
          List.iter
            (fun r ->
              Alcotest.(check bool)
                (r.Sim.Access_exp.pt ^ " lines sane")
                true
                (r.Sim.Access_exp.mean_lines >= 0.9
                && r.Sim.Access_exp.mean_lines < 40.0))
            run.Sim.Access_exp.results)
        runs)
    [ Sim.Access_exp.Superpage; Sim.Access_exp.Psb ]

let test_line_size_monotone () =
  let out = Sim.Runner.ablation_line_size ~options () in
  match List.map snd out with
  | [ l64; l128; l256 ] ->
      Alcotest.(check bool) "smaller lines cost more" true
        (l64 >= l128 && l128 >= l256)
  | _ -> Alcotest.fail "expected three line sizes"

let test_buckets_monotone () =
  let out = Sim.Runner.ablation_buckets ~options () in
  let lines = List.map (fun (_, _, l) -> l) out in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "more buckets, fewer lines" true (non_increasing lines);
  List.iter
    (fun (_, load, lines) ->
      (* the appendix formula within a third *)
      let formula = Sim.Analytic.clustered_lines ~load_factor:load in
      Alcotest.(check bool) "near 1 + load/2" true
        (abs_float (lines -. formula) /. formula < 0.34))
    out

let test_asid_returns_pairs () =
  let out = Sim.Runner.ablation_asid ~options () in
  Alcotest.(check int) "two multiprogrammed workloads" 2 (List.length out);
  List.iter
    (fun (_, flush, tagged) ->
      Alcotest.(check bool) "tagged never worse" true (tagged <= flush))
    out

let test_residency_runs () =
  let out = Sim.Runner.ablation_residency ~options () in
  Alcotest.(check bool) "non-empty" true (out <> [])

let test_remaining_ablations_run () =
  Sim.Runner.ablation_subblock ~options ();
  Sim.Runner.ablation_reverse_order ~options ();
  Sim.Runner.ablation_placement ~options ();
  Sim.Runner.ablation_tlb_size ~options ();
  Sim.Runner.ablation_software_tlb ~options ();
  Sim.Runner.ablation_shared_table ~options ();
  Sim.Runner.ablation_guarded ~options ();
  Sim.Runner.ablation_nested_linear ~options ();
  Sim.Runner.ablation_variable_factor ~options ();
  Sim.Runner.ablation_replacement ~options ();
  Sim.Runner.extension_future64 ~options ()

let suite =
  ( "runner",
    [
      Alcotest.test_case "table 1" `Slow test_table1;
      Alcotest.test_case "table 2" `Slow test_table2;
      Alcotest.test_case "figure 11 designs" `Slow test_figure11_all_designs;
      Alcotest.test_case "line-size monotone" `Slow test_line_size_monotone;
      Alcotest.test_case "buckets monotone + formula" `Slow test_buckets_monotone;
      Alcotest.test_case "asid pairs" `Slow test_asid_returns_pairs;
      Alcotest.test_case "residency" `Slow test_residency_runs;
      Alcotest.test_case "all other ablations run" `Slow
        test_remaining_ablations_run;
    ] )

let test_verify_passes () =
  Alcotest.(check bool) "all headline claims hold" true
    (Sim.Runner.verify
       ~options:
         { options with Sim.Runner.length = 20_000; placement_p = 0.95 }
       ())

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "verify command" `Slow test_verify_passes ] )
