(* The experiment harness: builder, analytic cross-checks, and the
   paper's headline results as executable assertions. *)

module Intf = Pt_common.Intf
module Types = Pt_common.Types

let seed = 0xBEEFL

let assignments_of spec =
  let snap = Workload.Snapshot.generate spec ~seed in
  List.mapi
    (fun i proc ->
      Sim.Builder.assign proc ~seed:(Int64.add seed (Int64.of_int i)) ())
    snap.Workload.Snapshot.procs

let test_builder_all_tables_agree () =
  (* every page resolves to the same frame in all five organizations *)
  let assignments = assignments_of Workload.Table1.nasa7 in
  let kinds =
    [
      Sim.Factory.Linear1;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Hashed;
      Sim.Factory.Inverted;
      Sim.Factory.clustered16;
    ]
  in
  let tables =
    List.map
      (fun kind ->
        List.map
          (fun a ->
            let pt = Sim.Factory.make kind in
            Sim.Builder.populate pt a ~policy:`Base;
            pt)
          assignments)
      kinds
  in
  List.iteri
    (fun ai a ->
      List.iter
        (fun (b : Sim.Builder.block_info) ->
          List.iter
            (fun (boff, ppn) ->
              let vpn =
                Int64.add
                  (Int64.shift_left b.Sim.Builder.vpbn 4)
                  (Int64.of_int boff)
              in
              List.iter
                (fun per_proc ->
                  match Intf.lookup (List.nth per_proc ai) ~vpn with
                  | Some tr, _ ->
                      if not (Int64.equal tr.Types.ppn ppn) then
                        Alcotest.failf "ppn mismatch at %Lx" vpn
                  | None, _ -> Alcotest.failf "page %Lx missing" vpn)
                tables)
            b.Sim.Builder.boffs_ppns)
        a.Sim.Builder.blocks)
      assignments

let test_builder_policies () =
  let assignments = assignments_of Workload.Table1.ml in
  let size policy =
    Sim.Size_exp.size_of Sim.Factory.clustered16 ~policy ~assignments
  in
  let base = size `Base and sp = size `Superpage and psb = size `Psb in
  Alcotest.(check bool) "superpage shrinks the table" true (sp < base);
  Alcotest.(check bool) "psb shrinks it even more" true (psb < sp);
  (* Figure 10's magnitudes: sp saves >= 50%, psb >= 70% on ML *)
  Alcotest.(check bool) "sp saves half" true
    (float_of_int sp /. float_of_int base < 0.5);
  Alcotest.(check bool) "psb saves 70%" true
    (float_of_int psb /. float_of_int base < 0.3)

let test_builder_fss () =
  let assignments = assignments_of Workload.Table1.ml in
  List.iter
    (fun a ->
      let fss_sp = Sim.Builder.fss a ~policy:`Superpage in
      let fss_psb = Sim.Builder.fss a ~policy:`Psb in
      Alcotest.(check bool) "fss in range" true (fss_sp >= 0.0 && fss_sp <= 1.0);
      Alcotest.(check bool) "psb covers at least the sp blocks" true
        (fss_psb >= fss_sp);
      Alcotest.(check (float 1e-9)) "base policy has no compact blocks" 0.0
        (Sim.Builder.fss a ~policy:`Base))
    assignments

(* --- analytic formulae (Table 2) --- *)

let test_analytic_lines () =
  Alcotest.(check (float 1e-9)) "hashed 1+a/2" 1.5
    (Sim.Analytic.hashed_lines ~load_factor:1.0);
  Alcotest.(check (float 1e-9)) "fm = levels" 7.0
    (Sim.Analytic.forward_mapped_lines ~nlevels:7);
  Alcotest.(check (float 1e-9)) "linear 1 + r*m" 1.2
    (Sim.Analytic.linear_lines ~r:0.1 ~m:2.0)

let test_analytic_sizes () =
  Alcotest.(check int) "hashed" 2400 (Sim.Analytic.hashed_size ~nactive1:100);
  Alcotest.(check int) "clustered (8*16+16)*10" 1440
    (Sim.Analytic.clustered_size ~subblock_factor:16 ~nactive_s:10);
  Alcotest.(check (float 1e-6)) "clustered fss=1 all 24B" 240.0
    (Sim.Analytic.clustered_sp_size ~subblock_factor:16 ~nactive_s:10 ~fss:1.0);
  Alcotest.(check int) "linear+hash" 41200
    (Sim.Analytic.linear_with_hashed_size ~nactive512:10)

let test_simulated_sizes_match_formulae () =
  (* the Table 2 cross-check as a hard assertion, for all workloads *)
  List.iter
    (fun spec ->
      let snap = Workload.Snapshot.generate spec ~seed in
      let assignments =
        List.mapi
          (fun i proc ->
            Sim.Builder.assign proc ~seed:(Int64.add seed (Int64.of_int i)) ())
          snap.Workload.Snapshot.procs
      in
      let nactive p =
        List.fold_left
          (fun acc proc ->
            acc + Workload.Snapshot.active_blocks ~subblock_factor:p proc)
          0 snap.Workload.Snapshot.procs
      in
      let sim kind = Sim.Size_exp.size_of kind ~policy:`Base ~assignments in
      Alcotest.(check int)
        (spec.Workload.Spec.name ^ " hashed")
        (Sim.Analytic.hashed_size ~nactive1:(nactive 1))
        (sim Sim.Factory.Hashed);
      Alcotest.(check int)
        (spec.Workload.Spec.name ^ " clustered")
        (Sim.Analytic.clustered_size ~subblock_factor:16 ~nactive_s:(nactive 16))
        (sim Sim.Factory.clustered16);
      Alcotest.(check int)
        (spec.Workload.Spec.name ^ " linear 6-level")
        (Sim.Analytic.multi_level_linear_size ~nactive ~levels:6)
        (sim Sim.Factory.Linear6);
      Alcotest.(check int)
        (spec.Workload.Spec.name ^ " forward-mapped")
        (Sim.Analytic.forward_mapped_size ~nactive
           ~bits_per_level:[| 8; 8; 8; 8; 8; 6; 6 |])
        (sim Sim.Factory.Forward_mapped))
    [ Workload.Table1.nasa7; Workload.Table1.gcc; Workload.Table1.spice ]

(* --- the paper's headline results as assertions --- *)

let test_figure9_shape () =
  let rows = Sim.Size_exp.figure9 () in
  List.iter
    (fun row ->
      let get label =
        (List.find (fun c -> c.Sim.Size_exp.label = label) row.Sim.Size_exp.cells)
          .Sim.Size_exp.ratio
      in
      (* "clustered page tables use less memory than the best
         conventional page tables for all the workloads" *)
      Alcotest.(check bool)
        (row.Sim.Size_exp.workload ^ ": clustered beats hashed")
        true
        (get "clustered" < 1.0);
      Alcotest.(check bool)
        (row.Sim.Size_exp.workload ^ ": clustered beats linear")
        true
        (get "clustered" < get "linear-1L");
      Alcotest.(check bool)
        (row.Sim.Size_exp.workload ^ ": 6-level costs more than 1-level")
        true
        (get "linear-6L" > get "linear-1L"))
    rows;
  (* linear explodes on the sparse multiprogrammed workloads *)
  let sparse = List.filter (fun r -> r.Sim.Size_exp.workload = "gcc") rows in
  List.iter
    (fun row ->
      let lin =
        (List.find (fun c -> c.Sim.Size_exp.label = "linear-6L")
           row.Sim.Size_exp.cells)
          .Sim.Size_exp.ratio
      in
      Alcotest.(check bool) "gcc linear > 5x hashed" true (lin > 5.0))
    sparse

let test_figure10_shape () =
  let rows = Sim.Size_exp.figure10 () in
  List.iter
    (fun row ->
      let get label =
        (List.find (fun c -> c.Sim.Size_exp.label = label) row.Sim.Size_exp.cells)
          .Sim.Size_exp.ratio
      in
      Alcotest.(check bool)
        (row.Sim.Size_exp.workload ^ ": psb <= sp <= clustered")
        true
        (get "clustered+psb" <= get "clustered+sp"
        && get "clustered+sp" <= get "clustered");
      Alcotest.(check bool)
        (row.Sim.Size_exp.workload ^ ": everything under 1.0")
        true
        (get "hashed+sp" < 1.0 && get "clustered+psb" < 1.0))
    rows

let test_figure11_shape () =
  (* one workload per TLB design keeps the test fast *)
  let spec = Workload.Table1.nasa7 in
  let find run name =
    (List.find
       (fun r ->
         (* prefix match: hashed variants have decorated names *)
         String.length r.Sim.Access_exp.pt >= String.length name
         && String.sub r.Sim.Access_exp.pt 0 (String.length name) = name)
       run.Sim.Access_exp.results)
      .Sim.Access_exp.mean_lines
  in
  (* 11a: forward-mapped at 7, everyone else close to 1 *)
  let a =
    Sim.Access_exp.run ~seed ~length:20000 ~design:Sim.Access_exp.Single
      ~pt_kinds:(Sim.Access_exp.kinds_for Sim.Access_exp.Single)
      spec
  in
  Alcotest.(check (float 0.01)) "fm = 7" 7.0 (find a "fwd-mapped");
  Alcotest.(check bool) "clustered near 1" true (find a "clustered" < 1.2);
  Alcotest.(check bool) "hashed acceptable" true (find a "hashed" < 2.0);
  (* 11b: superpage TLB cuts misses massively; hashed degrades,
     clustered does not *)
  let b =
    Sim.Access_exp.run ~seed ~length:20000 ~design:Sim.Access_exp.Superpage
      ~pt_kinds:(Sim.Access_exp.kinds_for Sim.Access_exp.Superpage)
      spec
  in
  Alcotest.(check bool) "superpages cut misses by >50%" true
    (let am = (List.hd a.Sim.Access_exp.results).Sim.Access_exp.misses in
     let bm = (List.hd b.Sim.Access_exp.results).Sim.Access_exp.misses in
     float_of_int bm < 0.5 *. float_of_int am);
  Alcotest.(check bool) "clustered still near 1" true (find b "clustered" < 1.2);
  Alcotest.(check bool) "hashed pays the second probe" true
    (find b "hashed" > find b "clustered");
  (* 11d: prefetching out of a hashed table is terrible *)
  let d =
    Sim.Access_exp.run ~seed ~length:20000 ~design:Sim.Access_exp.Csb
      ~pt_kinds:(Sim.Access_exp.kinds_for Sim.Access_exp.Csb)
      spec
  in
  Alcotest.(check bool) "hashed csb >= 8 lines" true (find d "hashed" > 8.0);
  Alcotest.(check bool) "clustered csb near 1" true (find d "clustered" < 1.5);
  Alcotest.(check bool) "linear csb near 1" true (find d "linear" < 4.0)

let test_walk_determinism () =
  (* identical runs produce identical results *)
  let spec = Workload.Table1.compress in
  let once () =
    Sim.Access_exp.run ~seed ~length:10000 ~design:Sim.Access_exp.Single
      ~pt_kinds:[ Sim.Factory.clustered16 ]
      spec
  in
  let r1 = once () and r2 = once () in
  Alcotest.(check bool) "same misses" true
    ((List.hd r1.Sim.Access_exp.results).Sim.Access_exp.misses
    = (List.hd r2.Sim.Access_exp.results).Sim.Access_exp.misses);
  Alcotest.(check bool) "same lines" true
    ((List.hd r1.Sim.Access_exp.results).Sim.Access_exp.lines
    = (List.hd r2.Sim.Access_exp.results).Sim.Access_exp.lines)

let test_subblock_sweep_tradeoff () =
  (* Section 3: larger factors help dense, hurt sparse *)
  let sweep spec =
    Sim.Size_exp.subblock_sweep ~factors:[ 2; 16 ] spec
  in
  let dense = sweep Workload.Table1.ml in
  let sparse = sweep Workload.Table1.gcc in
  let at l f = List.assoc f l in
  Alcotest.(check bool) "dense prefers 16" true (at dense 16 < at dense 2);
  Alcotest.(check bool) "sparse prefers smaller factors more than dense" true
    (at sparse 16 /. at sparse 2 > at dense 16 /. at dense 2)

let suite =
  ( "sim",
    [
      Alcotest.test_case "builder: all tables agree" `Quick
        test_builder_all_tables_agree;
      Alcotest.test_case "builder: policies shrink" `Quick test_builder_policies;
      Alcotest.test_case "builder: fss" `Quick test_builder_fss;
      Alcotest.test_case "analytic lines" `Quick test_analytic_lines;
      Alcotest.test_case "analytic sizes" `Quick test_analytic_sizes;
      Alcotest.test_case "simulated sizes = formulae" `Quick
        test_simulated_sizes_match_formulae;
      Alcotest.test_case "Figure 9 shape" `Slow test_figure9_shape;
      Alcotest.test_case "Figure 10 shape" `Slow test_figure10_shape;
      Alcotest.test_case "Figure 11 shape" `Slow test_figure11_shape;
      Alcotest.test_case "determinism" `Quick test_walk_determinism;
      Alcotest.test_case "subblock sweep tradeoff" `Quick
        test_subblock_sweep_tradeoff;
    ] )

let test_residency () =
  let out =
    Sim.Access_exp.run_residency ~seed ~length:20000 ~sets:1024 ~ways:4
      ~pt_kinds:[ Sim.Factory.Hashed; Sim.Factory.clustered16 ]
      Workload.Table1.ml
  in
  match out with
  | [ hashed; clustered ] ->
      Alcotest.(check bool) "warm <= cold" true
        (hashed.Sim.Access_exp.warm_lines <= hashed.Sim.Access_exp.cold_lines
        && clustered.Sim.Access_exp.warm_lines
           <= clustered.Sim.Access_exp.cold_lines);
      (* the smaller clustered table is more cache-resident *)
      Alcotest.(check bool) "clustered more resident than hashed" true
        (clustered.Sim.Access_exp.hit_ratio > hashed.Sim.Access_exp.hit_ratio)
  | _ -> Alcotest.fail "expected two results"

let test_reverse_probe_order_helps () =
  (* Section 6.3: under a psb TLB, probing the coarse table first wins *)
  let run coarse_first =
    let r =
      Sim.Access_exp.run ~seed ~length:20000 ~design:Sim.Access_exp.Psb
        ~pt_kinds:[ Sim.Factory.Hashed_two_tables { coarse_first } ]
        Workload.Table1.fftpde
    in
    (List.hd r.Sim.Access_exp.results).Sim.Access_exp.mean_lines
  in
  Alcotest.(check bool) "coarse-first cheaper" true (run true < run false)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "cache residency" `Slow test_residency;
        Alcotest.test_case "reverse probe order (6.3)" `Quick
          test_reverse_probe_order_helps;
      ] )

(* Mixed base/superpage/psb sequences agree with the model on every
   organization that stores the compact formats. *)
let mixed_clustered =
  Pt_model.mixed_model_test ~name:"mixed ops: clustered" ~make:(fun () ->
      Intf.Instance
        ( (module Clustered_pt.Table),
          Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:64 ()) ))

let mixed_hashed2t =
  Pt_model.mixed_model_test ~name:"mixed ops: hashed two-table" ~make:(fun () ->
      Intf.Instance
        ( (module Baselines.Hashed_pt),
          Baselines.Hashed_pt.create ~buckets:64
            ~mode:(Baselines.Hashed_pt.Two_tables { coarse_first = false })
            () ))

let mixed_linear =
  Pt_model.mixed_model_test ~name:"mixed ops: linear (replication)"
    ~make:(fun () ->
      Intf.Instance ((module Baselines.Linear_pt), Baselines.Linear_pt.create ()))

let mixed_fm =
  Pt_model.mixed_model_test ~name:"mixed ops: forward-mapped (replication)"
    ~make:(fun () ->
      Intf.Instance
        ((module Baselines.Forward_mapped_pt), Baselines.Forward_mapped_pt.create ()))

let suite =
  ( fst suite,
    snd suite
    @ [
        QCheck_alcotest.to_alcotest mixed_clustered;
        QCheck_alcotest.to_alcotest mixed_hashed2t;
        QCheck_alcotest.to_alcotest mixed_linear;
        QCheck_alcotest.to_alcotest mixed_fm;
      ] )

(* set_attr_range on base-only tables is equivalent to per-page
   updates: in-range pages change, out-of-range pages do not *)
let prop_range_op_equivalence =
  QCheck.Test.make ~name:"range op = per-page update (all tables)" ~count:40
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_range 1 60) (int_bound 127))
        (int_bound 100) (int_bound 40))
    (fun (pages, first, len) ->
      let len = len + 1 in
      let region =
        Addr.Region.make ~first_vpn:(Int64.of_int first) ~pages:len
      in
      List.for_all
        (fun kind ->
          let pt = Sim.Factory.make kind in
          let pages = List.sort_uniq compare pages in
          List.iter
            (fun p ->
              Intf.insert_base pt ~vpn:(Int64.of_int p) ~ppn:(Int64.of_int p)
                ~attr:Pte.Attr.default)
            pages;
          ignore
            (Intf.set_attr_range pt region ~f:(fun a ->
                 { a with Pte.Attr.writable = false }));
          List.for_all
            (fun p ->
              match Intf.lookup pt ~vpn:(Int64.of_int p) with
              | Some tr, _ ->
                  let expected_writable =
                    not (Addr.Region.mem region (Int64.of_int p))
                  in
                  tr.Types.attr.Pte.Attr.writable = expected_writable
              | None, _ -> false)
            pages)
        [
          Sim.Factory.clustered16;
          Sim.Factory.Clustered_variable;
          Sim.Factory.Hashed;
          Sim.Factory.Linear1;
          Sim.Factory.Forward_mapped;
        ])

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest prop_range_op_equivalence ] )

let test_mixed_policy () =
  (* Section 5: superpages and partial-subblocks coexist in one table;
     the mixed policy is never worse than psb-only in size and serves
     full blocks as superpage translations *)
  let assignments = assignments_of Workload.Table1.ml in
  let size policy =
    Sim.Size_exp.size_of Sim.Factory.clustered16 ~policy ~assignments
  in
  Alcotest.(check bool) "mixed <= psb" true (size `Mixed <= size `Psb);
  let pt = Sim.Factory.make Sim.Factory.clustered16 in
  List.iter (fun a -> Sim.Builder.populate pt a ~policy:`Mixed) assignments;
  let kinds = Hashtbl.create 3 in
  List.iter
    (fun a ->
      List.iter
        (fun (b : Sim.Builder.block_info) ->
          match b.Sim.Builder.boffs_ppns with
          | (boff, _) :: _ -> (
              let vpn =
                Int64.add
                  (Int64.shift_left b.Sim.Builder.vpbn 4)
                  (Int64.of_int boff)
              in
              match Intf.lookup pt ~vpn with
              | Some tr, _ ->
                  let k =
                    match tr.Types.kind with
                    | Types.Base -> "base"
                    | Types.Superpage _ -> "sp"
                    | Types.Partial_subblock _ -> "psb"
                  in
                  Hashtbl.replace kinds k
                    (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k))
              | None, _ -> Alcotest.fail "mixed population lost a page")
          | [] -> ())
        a.Sim.Builder.blocks)
    assignments;
  Alcotest.(check bool) "all three formats coexist" true
    (Hashtbl.mem kinds "base" && Hashtbl.mem kinds "sp" && Hashtbl.mem kinds "psb")

let suite =
  ( fst suite,
    snd suite @ [ Alcotest.test_case "mixed policy (Section 5)" `Quick test_mixed_policy ] )

(* the headline Figure 9 result is not seed luck: it holds across
   independently generated snapshots *)
let test_figure9_robust_across_seeds () =
  List.iter
    (fun s ->
      let rows = Sim.Size_exp.figure9 ~seed:(Int64.of_int s) () in
      List.iter
        (fun row ->
          let get label =
            (List.find
               (fun c -> c.Sim.Size_exp.label = label)
               row.Sim.Size_exp.cells)
              .Sim.Size_exp.ratio
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: clustered < hashed"
               row.Sim.Size_exp.workload s)
            true
            (get "clustered" < 1.0);
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: clustered <= linear"
               row.Sim.Size_exp.workload s)
            true
            (get "clustered" <= get "linear-1L"))
        rows)
    [ 7; 1995; 424242 ]

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "Figure 9 robust across seeds" `Slow
          test_figure9_robust_across_seeds;
      ] )

(* one differential property over every base-page-capable organization
   at once: after a random op sequence, all tables agree with the
   model and with each other *)
let prop_differential_all_tables =
  QCheck.Test.make ~name:"differential: all organizations agree" ~count:40
    (Pt_model.ops_arbitrary ~vpn_space:150 ~len:80)
    (fun ops ->
      let kinds =
        [
          Sim.Factory.clustered16;
          Sim.Factory.Clustered_variable;
          Sim.Factory.Clustered_tsb;
          Sim.Factory.Hashed;
          Sim.Factory.Hashed_packed;
          Sim.Factory.Hashed_spindex;
          Sim.Factory.Linear1;
          Sim.Factory.Forward_mapped;
          Sim.Factory.Forward_guarded;
          Sim.Factory.Software_tlb;
          Sim.Factory.Clustered_two_tables;
        ]
      in
      let tables = List.map (fun k -> Sim.Factory.make k) kinds in
      let model = Hashtbl.create 64 in
      List.iter
        (function
          | Pt_model.Insert (vpn, ppn) ->
              Hashtbl.replace model vpn ppn;
              List.iter
                (fun pt ->
                  Intf.insert_base pt ~vpn ~ppn ~attr:Pte.Attr.default)
                tables
          | Pt_model.Remove vpn ->
              Hashtbl.remove model vpn;
              List.iter (fun pt -> Intf.remove pt ~vpn) tables)
        ops;
      List.for_all2
        (fun kind pt ->
          let ok = ref (Intf.population pt = Hashtbl.length model) in
          for v = 0 to 149 do
            let vpn = Int64.of_int v in
            match (Hashtbl.find_opt model vpn, fst (Intf.lookup pt ~vpn)) with
            | None, None -> ()
            | Some ppn, Some tr when Int64.equal tr.Types.ppn ppn -> ()
            | _ ->
                ignore (Sim.Factory.name kind);
                ok := false
          done;
          !ok)
        kinds tables)

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest prop_differential_all_tables ] )

(* lookup_into (the allocation-free miss path) agrees with the legacy
   lookup — translation and charged walk — on every organization *)
let walk_equiv_tests =
  List.map
    (fun kind ->
      Pt_model.walk_equiv_test
        ~name:("lookup_into = lookup: " ^ Sim.Factory.name kind)
        ~make:(fun () -> Sim.Factory.make kind))
    [
      Sim.Factory.Linear6;
      Sim.Factory.Linear1;
      Sim.Factory.Linear_hashed;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Forward_guarded;
      Sim.Factory.Hashed;
      Sim.Factory.Hashed_two_tables { coarse_first = false };
      Sim.Factory.Hashed_spindex;
      Sim.Factory.Hashed_packed;
      Sim.Factory.clustered16;
      Sim.Factory.Clustered_variable;
      Sim.Factory.Clustered_two_tables;
      Sim.Factory.Inverted;
      Sim.Factory.Software_tlb;
      Sim.Factory.Clustered_tsb;
    ]

let suite =
  (fst suite, snd suite @ List.map QCheck_alcotest.to_alcotest walk_equiv_tests)
