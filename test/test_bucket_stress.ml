(* Multicore stress of Bucket_lock.Real (paper, Section 3.1): several
   domains mutate one clustered table concurrently, serializing on the
   per-bucket writer lock keyed by the table's own hash.  Domains own
   disjoint VPN ranges but their page blocks collide in the (small)
   bucket array, so the chains really are contended.  The final table
   must agree with a serially-built reference on population and on
   every translation — node addresses and chain order may differ. *)

let factor = 16

let config = Clustered_pt.Config.make ~subblock_factor:factor ~buckets:64 ()

let num_domains = 4

let vpns_per_domain = 1_000

(* scattered, so one domain's range spans many page blocks *)
let vpn ~domain ~k =
  Int64.of_int ((domain * 1_000_000) + (k * 17))

let ppn_of vpn = Int64.add (Int64.mul vpn 3L) 7L

let bucket_of v =
  Clustered_pt.Config.hash config
    (Int64.shift_right_logical v (Addr.Bits.log2_exact factor))

let attr = Pte.Attr.default

let insert_range table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    let v = vpn ~domain ~k in
    Clustered_pt.Bucket_lock.Real.with_write lock ~bucket:(bucket_of v)
      (fun () ->
        Clustered_pt.Table.insert_base table ~vpn:v ~ppn:(ppn_of v) ~attr)
  done

let remove_every_other table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    if k mod 2 = 1 then begin
      let v = vpn ~domain ~k in
      Clustered_pt.Bucket_lock.Real.with_write lock ~bucket:(bucket_of v)
        (fun () -> Clustered_pt.Table.remove table ~vpn:v)
    end
  done

let read_back_range table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    let v = vpn ~domain ~k in
    let tr =
      Clustered_pt.Bucket_lock.Real.with_read lock ~bucket:(bucket_of v)
        (fun () -> fst (Clustered_pt.Table.lookup table ~vpn:v))
    in
    match tr with
    | Some t ->
        if t.Pt_common.Types.ppn <> ppn_of v then
          failwith "read back a wrong translation under load"
    | None -> failwith "lost an insert under load"
  done

let in_domains f =
  let ds =
    Array.init num_domains (fun d -> Domain.spawn (fun () -> f ~domain:d))
  in
  Array.iter Domain.join ds

let test_stress () =
  let table = Clustered_pt.Table.create config in
  let lock =
    Clustered_pt.Bucket_lock.Real.create ~buckets:config.Clustered_pt.Config.buckets
  in
  in_domains (fun ~domain ->
      insert_range table lock ~domain;
      read_back_range table lock ~domain);
  in_domains (remove_every_other table lock);
  (* serial reference over the same surviving VPNs *)
  let reference = Clustered_pt.Table.create config in
  for domain = 0 to num_domains - 1 do
    for k = 0 to vpns_per_domain - 1 do
      if k mod 2 = 0 then
        let v = vpn ~domain ~k in
        Clustered_pt.Table.insert_base reference ~vpn:v ~ppn:(ppn_of v) ~attr
    done
  done;
  Alcotest.(check int)
    "population matches serial reference"
    (Clustered_pt.Table.population reference)
    (Clustered_pt.Table.population table);
  for domain = 0 to num_domains - 1 do
    for k = 0 to vpns_per_domain - 1 do
      let v = vpn ~domain ~k in
      let got = fst (Clustered_pt.Table.lookup table ~vpn:v) in
      let want = fst (Clustered_pt.Table.lookup reference ~vpn:v) in
      if got <> want then
        Alcotest.failf "translation mismatch at vpn %Ld" v
    done
  done

let suite =
  ( "bucket-lock stress",
    [ Alcotest.test_case "concurrent insert/read/remove" `Slow test_stress ] )
