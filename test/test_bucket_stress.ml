(* Multicore stress of Bucket_lock.Real (paper, Section 3.1): several
   domains mutate one clustered table concurrently, serializing on the
   per-bucket writer lock keyed by the table's own hash.  Domains own
   disjoint VPN ranges but their page blocks collide in the (small)
   bucket array, so the chains really are contended.  The final table
   must agree with a serially-built reference on population and on
   every translation — node addresses and chain order may differ. *)

let factor = 16

let config = Clustered_pt.Config.make ~subblock_factor:factor ~buckets:64 ()

let num_domains = 4

let vpns_per_domain = 1_000

(* scattered, so one domain's range spans many page blocks *)
let vpn ~domain ~k =
  Int64.of_int ((domain * 1_000_000) + (k * 17))

let ppn_of vpn = Int64.add (Int64.mul vpn 3L) 7L

let bucket_of v =
  Clustered_pt.Config.hash config
    (Int64.shift_right_logical v (Addr.Bits.log2_exact factor))

let attr = Pte.Attr.default

let insert_range table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    let v = vpn ~domain ~k in
    Clustered_pt.Bucket_lock.Real.with_write lock ~bucket:(bucket_of v)
      (fun () ->
        Clustered_pt.Table.insert_base table ~vpn:v ~ppn:(ppn_of v) ~attr)
  done

let remove_every_other table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    if k mod 2 = 1 then begin
      let v = vpn ~domain ~k in
      Clustered_pt.Bucket_lock.Real.with_write lock ~bucket:(bucket_of v)
        (fun () -> Clustered_pt.Table.remove table ~vpn:v)
    end
  done

let read_back_range table lock ~domain =
  for k = 0 to vpns_per_domain - 1 do
    let v = vpn ~domain ~k in
    let tr =
      Clustered_pt.Bucket_lock.Real.with_read lock ~bucket:(bucket_of v)
        (fun () -> fst (Clustered_pt.Table.lookup table ~vpn:v))
    in
    match tr with
    | Some t ->
        if t.Pt_common.Types.ppn <> ppn_of v then
          failwith "read back a wrong translation under load"
    | None -> failwith "lost an insert under load"
  done

let in_domains f =
  let ds =
    Array.init num_domains (fun d -> Domain.spawn (fun () -> f ~domain:d))
  in
  Array.iter Domain.join ds

let test_stress () =
  let table = Clustered_pt.Table.create config in
  let lock =
    Clustered_pt.Bucket_lock.Real.create ~buckets:config.Clustered_pt.Config.buckets
  in
  let quiescent label =
    Alcotest.(check int)
      (label ^ ": no bucket still held")
      0
      (Clustered_pt.Bucket_lock.Real.currently_held lock)
  in
  in_domains (fun ~domain ->
      insert_range table lock ~domain;
      read_back_range table lock ~domain);
  quiescent "after insert+read round";
  in_domains (remove_every_other table lock);
  quiescent "after remove round";
  (* every acquisition the rounds issued is on the counters: one write
     per insert, one read per read-back, one write per removal *)
  let issued_writes =
    (num_domains * vpns_per_domain) + (num_domains * (vpns_per_domain / 2))
  in
  Alcotest.(check int) "write acquisitions accounted" issued_writes
    (Clustered_pt.Bucket_lock.Real.write_acquisitions lock);
  Alcotest.(check int) "read acquisitions accounted"
    (num_domains * vpns_per_domain)
    (Clustered_pt.Bucket_lock.Real.read_acquisitions lock);
  (* serial reference over the same surviving VPNs *)
  let reference = Clustered_pt.Table.create config in
  for domain = 0 to num_domains - 1 do
    for k = 0 to vpns_per_domain - 1 do
      if k mod 2 = 0 then
        let v = vpn ~domain ~k in
        Clustered_pt.Table.insert_base reference ~vpn:v ~ppn:(ppn_of v) ~attr
    done
  done;
  Alcotest.(check int)
    "population matches serial reference"
    (Clustered_pt.Table.population reference)
    (Clustered_pt.Table.population table);
  for domain = 0 to num_domains - 1 do
    for k = 0 to vpns_per_domain - 1 do
      let v = vpn ~domain ~k in
      let got = fst (Clustered_pt.Table.lookup table ~vpn:v) in
      let want = fst (Clustered_pt.Table.lookup reference ~vpn:v) in
      if got <> want then
        Alcotest.failf "translation mismatch at vpn %Ld" v
    done
  done

(* Single-bucket insert/remove interleaving: every page block hashes to
   bucket 0, so the chain grows long and every unlink path (head,
   middle, tail, last-node-empties-bucket) gets exercised.  After the
   full unmap the table must be indistinguishable from empty — zero
   live nodes, zero logical bytes, head_tags mirror showing the bucket
   empty — with the emptied nodes parked on the free list for reuse. *)
let test_single_bucket_reclaim () =
  let config =
    Clustered_pt.Config.make ~subblock_factor:factor ~buckets:1 ()
  in
  let arena = Mem.Sim_memory.create () in
  let table = Clustered_pt.Table.create ~arena config in
  let blocks = 64 in
  let page b k = Int64.of_int ((b * factor) + k) in
  let live = Hashtbl.create 97 in
  let insert v =
    Clustered_pt.Table.insert_base table ~vpn:v ~ppn:(ppn_of v) ~attr;
    Hashtbl.replace live v ()
  in
  let remove v =
    Clustered_pt.Table.remove table ~vpn:v;
    Hashtbl.remove live v
  in
  (* interleave: fill odd-k of every block, empty half the blocks, fill
     even-k, then check everything still reads back *)
  for b = 0 to blocks - 1 do
    for k = 0 to factor - 1 do
      if k mod 2 = 1 then insert (page b k)
    done
  done;
  for b = 0 to blocks - 1 do
    if b mod 2 = 0 then
      for k = 0 to factor - 1 do
        if k mod 2 = 1 then remove (page b k)
      done
  done;
  for b = 0 to blocks - 1 do
    for k = 0 to factor - 1 do
      if k mod 2 = 0 then insert (page b k)
    done
  done;
  Hashtbl.iter
    (fun v () ->
      match fst (Clustered_pt.Table.lookup table ~vpn:v) with
      | Some tr when tr.Pt_common.Types.ppn = ppn_of v -> ()
      | Some _ -> Alcotest.failf "wrong translation at vpn %Ld" v
      | None -> Alcotest.failf "lost vpn %Ld mid-interleave" v)
    live;
  let peak_nodes = Clustered_pt.Table.node_count table in
  let peak_arena = Mem.Sim_memory.total_allocated_bytes arena in
  Alcotest.(check bool) "chains actually built up" true (peak_nodes > 0);
  (* full unmap, removals striped so head/middle/tail unlinks all occur *)
  let remaining = Hashtbl.fold (fun v () acc -> v :: acc) live [] in
  let remaining = List.sort compare remaining in
  let stripes = [ (fun v -> Int64.rem v 3L = 0L); (fun v -> Int64.rem v 3L = 1L); (fun _ -> true) ] in
  List.iter
    (fun select -> List.iter (fun v -> if select v && Hashtbl.mem live v then remove v) remaining)
    stripes;
  Alcotest.(check int) "live nodes return to zero" 0
    (Clustered_pt.Table.node_count table);
  Alcotest.(check int) "footprint equals empty baseline" 0
    (Clustered_pt.Table.size_bytes table);
  Alcotest.(check int) "population is zero" 0
    (Clustered_pt.Table.population table);
  Alcotest.(check bool) "emptied nodes parked for reuse" true
    (Clustered_pt.Table.free_nodes table > 0);
  (match fst (Clustered_pt.Table.lookup table ~vpn:(page 0 1)) with
  | None -> ()
  | Some _ -> Alcotest.fail "lookup found a mapping in a drained table");
  (* refill: the free list must satisfy the rebuild without growing the
     arena past its high-water mark (reuse before growing) *)
  for b = 0 to blocks - 1 do
    for k = 0 to factor - 1 do
      insert (page b k)
    done
  done;
  Alcotest.(check int) "rebuild reuses reclaimed nodes, arena untouched"
    peak_arena
    (Mem.Sim_memory.total_allocated_bytes arena)

(* Writer preference (Section 3.1: "don't starve pending range
   operations").  Readers cycle a bucket's read lock continuously and
   only stop once they observe the writer's side effect — so if a
   continuous reader stream could starve the writer, this test would
   never terminate.  Afterwards the lock must be fully released and
   the per-slot counters must equal exactly the acquisitions issued:
   each reader's local count of granted reads, one write. *)
let test_writer_preference () =
  let lock = Clustered_pt.Bucket_lock.Real.create ~buckets:1 in
  let wrote = Atomic.make false in
  let n_readers = 3 in
  let readers =
    Array.init n_readers (fun _ ->
        Domain.spawn (fun () ->
            let reads = ref 0 in
            while not (Atomic.get wrote) do
              Clustered_pt.Bucket_lock.Real.with_read lock ~bucket:0
                (fun () -> incr reads)
            done;
            !reads))
  in
  let writer =
    Domain.spawn (fun () ->
        Clustered_pt.Bucket_lock.Real.with_write lock ~bucket:0 (fun () ->
            Atomic.set wrote true))
  in
  Domain.join writer;
  let reads = Array.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  Alcotest.(check int) "lock fully released" 0
    (Clustered_pt.Bucket_lock.Real.currently_held lock);
  Alcotest.(check int) "exactly one write granted" 1
    (Clustered_pt.Bucket_lock.Real.write_acquisitions lock);
  Alcotest.(check int) "every granted read counted" reads
    (Clustered_pt.Bucket_lock.Real.read_acquisitions lock)

(* Repeated contended rounds: currently_held must return to zero after
   every round, not just at the end of one lucky schedule. *)
let test_held_returns_to_zero () =
  let lock = Clustered_pt.Bucket_lock.Real.create ~buckets:8 in
  for round = 1 to 5 do
    let ds =
      Array.init 4 (fun d ->
          Domain.spawn (fun () ->
              for k = 0 to 499 do
                let bucket = (d + k) land 7 in
                if k land 3 = 0 then
                  Clustered_pt.Bucket_lock.Real.with_write lock ~bucket
                    (fun () -> ())
                else
                  Clustered_pt.Bucket_lock.Real.with_read lock ~bucket
                    (fun () -> ())
              done))
    in
    Array.iter Domain.join ds;
    Alcotest.(check int)
      (Printf.sprintf "round %d leaves no bucket held" round)
      0
      (Clustered_pt.Bucket_lock.Real.currently_held lock)
  done

let suite =
  ( "bucket-lock stress",
    [
      Alcotest.test_case "concurrent insert/read/remove" `Slow test_stress;
      Alcotest.test_case "single-bucket interleaved reclaim" `Quick
        test_single_bucket_reclaim;
      Alcotest.test_case "writer preference under reader stream" `Quick
        test_writer_preference;
      Alcotest.test_case "held count returns to zero each round" `Quick
        test_held_returns_to_zero;
    ] )
