(* ptsim: reproduce the tables and figures of "A New Page Table for
   64-bit Address Spaces" (Talluri, Hill, Khalidi; SOSP '95). *)

open Cmdliner

let options seed length placement quick csv =
  Sim.Report.set_csv_dir csv;
  {
    Sim.Runner.seed = Int64.of_int seed;
    length;
    placement_p = placement;
    quick;
  }

let options_term =
  let seed =
    Arg.(
      value
      & opt int 0x19955051
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for all generators.")
  in
  let length =
    Arg.(
      value
      & opt int 80_000
      & info [ "length" ] ~docv:"N" ~doc:"Trace accesses per workload.")
  in
  let placement =
    Arg.(
      value
      & opt float 0.95
      & info [ "placement" ] ~docv:"P"
          ~doc:
            "Probability a page block's physical reservation succeeds \
             (memory-pressure model).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Run trace experiments on three workloads only.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write every table as CSV into $(docv).")
  in
  Term.(const options $ seed $ length $ placement $ quick $ csv)

let domains_conv =
  let parse s =
    match int_of_string_opt s with
    | Some d when d >= 1 -> Ok d
    | Some _ -> Error (`Msg "domain count must be >= 1")
    | None -> Error (`Msg (Printf.sprintf "invalid domain count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* The CLI contract for enum-valued flags, generalized from
   throughput's --locking: an unknown value names the offending token
   and the accepted set on stderr and exits 2 — never cmdliner's
   generic usage error, never a silent fallback to a mode that was not
   asked for.  Pinned by test/cli/ptsim_errors.t. *)
let strict_enum ~flag ~cmd choices =
  let parse s =
    match List.assoc_opt s choices with
    | Some v -> Ok v
    | None ->
        Printf.eprintf "unknown %s %S for %s (have: %s)\n%!" flag s cmd
          (String.concat ", " (List.map fst choices));
        exit 2
  in
  let print ppf v =
    match List.find_opt (fun (_, w) -> w = v) choices with
    | Some (n, _) -> Format.pp_print_string ppf n
    | None -> ()
  in
  Arg.conv (parse, print)

(* comma-separated fault sites, under the same contract *)
let strict_sites ~cmd =
  let have = String.concat ", " (List.map Fault.site_name Fault.all_sites) in
  let parse s =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          let n = String.trim n in
          match Fault.site_of_name n with
          | Some site -> go (site :: acc) rest
          | None ->
              Printf.eprintf "unknown site %S for %s (have: %s)\n%!" n cmd
                have;
              exit 2)
    in
    go [] (String.split_on_char ',' s)
  in
  let print ppf sites =
    Format.pp_print_string ppf
      (String.concat "," (List.map Fault.site_name sites))
  in
  Arg.conv (parse, print)

let domains_term =
  Arg.(
    value
    & opt (some domains_conv) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the experiment pool (default: the host's \
           recommended count; 1 runs the serial path).  Results are \
           identical for every value.")

(* the run header: which pool the experiments fan out over *)
let announce_pool domains =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> Exec.Domain_pool.default_domains ()
  in
  Printf.printf "domain pool: %d domain%s (host recommends %d)\n%!" n
    (if n = 1 then "" else "s")
    (Exec.Domain_pool.default_domains ())

let run_table1 options domains =
  announce_pool domains;
  ignore (Sim.Runner.table1 ~options ?domains ())

let run_figure9 options domains =
  announce_pool domains;
  ignore (Sim.Runner.figure9 ~options ?domains ())

let run_figure10 options domains =
  announce_pool domains;
  ignore (Sim.Runner.figure10 ~options ?domains ())

let design_conv =
  strict_enum ~flag:"tlb" ~cmd:"figure11"
    [
      ("single", Sim.Access_exp.Single);
      ("superpage", Sim.Access_exp.Superpage);
      ("psb", Sim.Access_exp.Psb);
      ("csb", Sim.Access_exp.Csb);
      ("a", Sim.Access_exp.Single);
      ("b", Sim.Access_exp.Superpage);
      ("c", Sim.Access_exp.Psb);
      ("d", Sim.Access_exp.Csb);
    ]

let run_figure11 options domains design =
  announce_pool domains;
  ignore (Sim.Runner.figure11 ~options ?domains ~design ())

let run_table2 options domains =
  announce_pool domains;
  Sim.Runner.table2 ~options ?domains ()

let run_ablations options domains =
  announce_pool domains;
  ignore (Sim.Runner.ablation_line_size ~options ?domains ());
  Sim.Runner.ablation_subblock ~options ?domains ();
  ignore (Sim.Runner.ablation_buckets ~options ?domains ());
  ignore (Sim.Runner.ablation_residency ~options ?domains ());
  Sim.Runner.ablation_reverse_order ~options ?domains ();
  ignore (Sim.Runner.ablation_asid ~options ?domains ());
  Sim.Runner.ablation_placement ~options ?domains ();
  Sim.Runner.ablation_tlb_size ~options ?domains ();
  Sim.Runner.ablation_software_tlb ~options ();
  Sim.Runner.ablation_shared_table ~options ?domains ();
  Sim.Runner.ablation_guarded ~options ?domains ();
  Sim.Runner.ablation_nested_linear ~options ?domains ();
  Sim.Runner.ablation_variable_factor ~options ?domains ();
  Sim.Runner.ablation_replacement ~options ?domains ();
  Sim.Runner.extension_future64 ~options ?domains ()

(* machine-readable churn rows, for CI artifacts and cross-commit
   comparison; same row shape as the bench JSON's churn section *)
let churn_rows_json rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i (r : Sim.Runner.churn_row) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"table\": \"%s\", \"policy\": \"%s\", \"seeds\": %d, \
            \"peak_kb\": %.1f, \"final_bytes\": %.0f, \"insert_lines\": \
            %.3f, \"delete_lines\": %.3f, \"promotions\": %d, \
            \"demotions\": %d, \"cow_breaks\": %d, \"final_nodes\": %d }%s\n"
           r.Sim.Runner.churn_name r.Sim.Runner.churn_policy
           r.Sim.Runner.churn_seeds r.Sim.Runner.churn_peak_kb
           r.Sim.Runner.churn_final_bytes r.Sim.Runner.churn_insert_lines
           r.Sim.Runner.churn_delete_lines r.Sim.Runner.churn_promotions
           r.Sim.Runner.churn_demotions r.Sim.Runner.churn_cow_breaks
           r.Sim.Runner.churn_final_nodes
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]";
  Buffer.contents b

let run_churn options domains ops seeds procs sample json =
  announce_pool domains;
  let rows =
    Sim.Runner.churn ~options ?domains ~seeds ~ops ~procs
      ~sample_every:sample ()
  in
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"schema_version\": 2,\n  \"experiment\": \"churn\",\n  \
         \"ops\": %d,\n  \"seeds\": %d,\n  \"rows\": %s\n}\n"
        ops seeds (churn_rows_json rows);
      close_out oc;
      Printf.printf "\nwrote %s\n%!" path

(* machine-readable throughput rows; deterministic fields first, the
   timing fields last (CI diffs the former, ignores the latter) *)
let throughput_rows_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (r : Sim.Runner.throughput_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"table\": \"%s\", \"locking\": \"%s\", \"domains\": %d, \
            \"total_ops\": %d, \"read_locks\": %d, \"write_locks\": %d, \
            \"read_contention\": %d, \"seqlock_retries\": %d, \
            \"seqlock_fallbacks\": %d, \"population\": %d, \"ops_per_sec\": \
            %.0f, \"elapsed_s\": %.3f }%s\n"
           r.Sim.Runner.tp_org r.Sim.Runner.tp_locking r.Sim.Runner.tp_domains
           r.Sim.Runner.tp_total_ops r.Sim.Runner.tp_read_locks
           r.Sim.Runner.tp_write_locks r.Sim.Runner.tp_read_contention
           r.Sim.Runner.tp_sq_retries r.Sim.Runner.tp_sq_fallbacks
           r.Sim.Runner.tp_population r.Sim.Runner.tp_ops_per_sec
           r.Sim.Runner.tp_elapsed_s
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]";
  Buffer.contents buf

let run_throughput domains_list streams ops vpns seed org lockings json =
  let orgs =
    match org with
    | `All -> [ Pt_service.Service.Clustered; Pt_service.Service.Hashed ]
    | `One o -> [ o ]
  in
  let pairs =
    List.concat_map (fun o -> List.map (fun l -> (o, l)) lockings) orgs
  in
  let rows =
    Sim.Runner.throughput ~domains_list ~streams ~ops_per_domain:ops
      ~vpns_per_domain:vpns ~seed ~pairs ()
  in
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"schema_version\": 2,\n  \"experiment\": \"throughput\",\n  \
         \"ops_per_domain\": %d,\n  \"vpns_per_domain\": %d,\n  \"seed\": \
         %d,\n  \"rows\": %s\n}\n"
        ops vpns seed (throughput_rows_json rows);
      close_out oc;
      Printf.printf "\nwrote %s\n%!" path

let run_all options domains =
  announce_pool domains;
  Sim.Runner.all ~options ?domains ();
  ignore (Sim.Runner.churn_for_suite ~options ?domains ());
  ignore (Sim.Runner.throughput_for_suite ~options ())

let run_verify options domains =
  announce_pool domains;
  if not (Sim.Runner.verify ~options ?domains ()) then exit 1

let run_workload options name =
  match Workload.Table1.find name with
  | None ->
      Printf.eprintf "unknown workload %S; try one of: %s\n" name
        (String.concat ", "
           (List.map
              (fun s -> s.Workload.Spec.name)
              Workload.Table1.all_with_kernel));
      exit 1
  | Some spec ->
      let snap = Workload.Snapshot.generate spec ~seed:options.Sim.Runner.seed in
      Printf.printf "workload %s: %d processes, %d pages (hashed PT %.1fKB)\n"
        spec.Workload.Spec.name
        (List.length snap.Workload.Snapshot.procs)
        (Workload.Snapshot.total_pages snap)
        (float_of_int (Workload.Snapshot.total_pages snap) *. 24.0 /. 1024.0);
      List.iter
        (fun proc ->
          let pages = Workload.Snapshot.proc_pages proc in
          let blocks = Workload.Snapshot.active_blocks ~subblock_factor:16 proc in
          let dense = Array.length (Workload.Snapshot.dense_runs proc) in
          let chunks = Array.length (Workload.Snapshot.chunk_runs proc) in
          Printf.printf
            "  %-10s %5d pages in %4d blocks (%.1f pages/block): %d dense \
             runs, %d chunks\n"
            proc.Workload.Snapshot.pname pages blocks
            (float_of_int pages /. float_of_int blocks)
            dense chunks)
        snap.Workload.Snapshot.procs;
      let trace =
        Workload.Trace.generate spec snap
          ~seed:(Int64.add options.Sim.Runner.seed 0x77L)
          ~length:options.Sim.Runner.length
      in
      Printf.printf
        "trace: %d accesses over %d distinct pages (locality %.2f, %s)\n"
        (Workload.Trace.accesses trace)
        (Workload.Trace.distinct_pages trace)
        spec.Workload.Spec.locality
        (match spec.Workload.Spec.trace with
        | Workload.Spec.Array_sweep -> "array sweep"
        | Workload.Spec.Pointer_chase -> "pointer chase"
        | Workload.Spec.Join -> "nested-loop join"
        | Workload.Spec.Gc_scan -> "GC scan"
        | Workload.Spec.Multiprog -> "multiprogrammed")

let run_dump options name dir =
  match Workload.Table1.find name with
  | None ->
      Printf.eprintf "unknown workload %S\n" name;
      exit 1
  | Some spec ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let snap = Workload.Snapshot.generate spec ~seed:options.Sim.Runner.seed in
      let trace =
        Workload.Trace.generate spec snap
          ~seed:(Int64.add options.Sim.Runner.seed 0x77L)
          ~length:options.Sim.Runner.length
      in
      let snap_path = Filename.concat dir (name ^ ".snapshot") in
      let trace_path = Filename.concat dir (name ^ ".trace") in
      Workload.Snapshot.save snap snap_path;
      Workload.Trace.save trace trace_path;
      Printf.printf "wrote %s (%d pages) and %s (%d accesses)\n" snap_path
        (Workload.Snapshot.total_pages snap)
        trace_path
        (Workload.Trace.accesses trace)

let run_replay options snap_path trace_path =
  let snap = Workload.Snapshot.load snap_path in
  let trace = Workload.Trace.load trace_path in
  Printf.printf "replaying %s: %d pages, %d accesses\n\n"
    snap.Workload.Snapshot.workload
    (Workload.Snapshot.total_pages snap)
    (Workload.Trace.accesses trace);
  let assignments =
    List.mapi
      (fun i proc ->
        Sim.Builder.assign proc
          ~placement_p:options.Sim.Runner.placement_p
          ~seed:(Int64.add options.Sim.Runner.seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
    |> Array.of_list
  in
  let kinds =
    [
      Sim.Factory.Linear1;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Hashed;
      Sim.Factory.clustered16;
      Sim.Factory.Clustered_variable;
    ]
  in
  let build kind =
    Array.map
      (fun a ->
        let pt = Sim.Factory.make kind in
        Sim.Builder.populate pt a ~policy:`Base;
        pt)
      assignments
  in
  let reference = build Sim.Factory.clustered16 in
  (* record the 64-entry single-page-size miss stream once *)
  let tlb = Tlb.Intf.fa ~entries:64 () in
  let misses = ref [] in
  Array.iter
    (function
      | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
      | Workload.Trace.Access (proc, vpn) -> (
          match Tlb.Intf.access tlb ~vpn with
          | `Hit -> ()
          | `Block_miss | `Subblock_miss -> (
              misses := (proc, vpn) :: !misses;
              match Pt_common.Intf.lookup reference.(proc) ~vpn with
              | Some tr, _ -> Tlb.Intf.fill tlb tr
              | None, _ -> ()))
      | _ -> ())
    trace;
  let misses = List.rev !misses in
  let n = List.length misses in
  Printf.printf "%d TLB misses (64-entry conventional TLB)\n" n;
  List.iter
    (fun kind ->
      let tables = build kind in
      let counter = Mem.Cache_model.create_counter () in
      List.iter
        (fun (proc, vpn) ->
          let _, w = Pt_common.Intf.lookup tables.(proc) ~vpn in
          ignore
            (Mem.Cache_model.record_walk counter w.Pt_common.Types.accesses))
        misses;
      let size =
        Array.fold_left
          (fun acc pt -> acc + Pt_common.Intf.size_bytes pt)
          0 tables
      in
      Printf.printf "  %-14s %8.1fKB   %.2f lines/miss\n"
        (Sim.Factory.name kind)
        (float_of_int size /. 1024.0)
        (Mem.Cache_model.mean_lines counter))
    kinds

let run_inspect options domains org =
  announce_pool domains;
  ignore (Sim.Runner.inspect ~options ?domains ~org ())

(* --- fsck / faultsim: breaking the table on purpose --- *)

(* A deterministic demo population with every representation the
   checker knows: base pages, one-block and multi-block superpages
   (the latter give torn_replica a site), and partial subblocks. *)
let fsck_build org seed =
  let buckets = 512 and subblock_factor = 16 in
  let rand i =
    Addr.Bits.mix64 (Int64.logxor (Int64.of_int seed) (Int64.of_int (i + 1)))
  in
  let attr = Pte.Attr.default in
  match org with
  | Pt_service.Service.Clustered ->
      let t =
        Clustered_pt.Table.create
          (Clustered_pt.Config.make ~buckets ~subblock_factor ())
      in
      for i = 0 to 383 do
        let r = rand i in
        let vpn = Int64.logand r 0xFFFFL in
        let ppn = Int64.logand (Int64.shift_right_logical r 16) 0xFFFFFL in
        Clustered_pt.Table.insert_base t ~vpn ~ppn ~attr
      done;
      Clustered_pt.Table.insert_superpage t ~vpn:0x40000L
        ~size:Addr.Page_size.kb64 ~ppn:0x1000L ~attr;
      Clustered_pt.Table.insert_superpage t ~vpn:0x80000L
        ~size:Addr.Page_size.kb256 ~ppn:0x2000L ~attr;
      Clustered_pt.Table.insert_psb t ~vpbn:0x3000L ~vmask:0b101
        ~ppn:0x4000L ~attr;
      Fsck.Clustered t
  | Pt_service.Service.Hashed ->
      let t =
        Baselines.Hashed_pt.create ~buckets ~subblock_factor
          ~mode:Baselines.Hashed_pt.No_superpages ()
      in
      for i = 0 to 383 do
        let r = rand i in
        let vpn = Int64.logand r 0xFFFFL in
        let ppn = Int64.logand (Int64.shift_right_logical r 16) 0xFFFFFL in
        Baselines.Hashed_pt.insert_base t ~vpn ~ppn ~attr
      done;
      Fsck.Hashed t

let run_fsck seed org corruptions repair json =
  let table = fsck_build org seed in
  List.iter
    (fun kind ->
      if not (List.mem kind (Fsck.corruption_kinds table)) then (
        Printf.eprintf "unknown corruption %S for %s (have: %s)\n%!" kind
          (Pt_service.Service.org_name org)
          (String.concat ", " (Fsck.corruption_kinds table));
        exit 2);
      if not (Fsck.corrupt_by_name table kind) then
        Printf.eprintf "corruption %S found no applicable site\n%!" kind)
    corruptions;
  let report = Fsck.check table in
  let report =
    if repair && not (Fsck.clean report) then begin
      let r = Fsck.repair table in
      Printf.printf "repair: %d kept, %d dropped\n%!" r.Fsck.kept
        r.Fsck.dropped;
      Fsck.check table
    end
    else report
  in
  if json then print_endline (Fsck.report_to_json report)
  else Format.printf "%a@." Fsck.pp_report report;
  if not (Fsck.clean report) then exit 1

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- crash dumps: the flight recorder's event tail as JSON --- *)

(* With --dump-dir the dump is written unconditionally — the recorder
   tail is a pure function of (seed, streams), so tests and CI can
   byte-diff it across --domains; on an unclean exit the path is named
   on stderr so the operator knows where the last events went. *)
let dump_last = 64

let write_crash_dump dir ~cmd =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (cmd ^ "-crash.json") in
  write_file path (Obs.Recorder.dump_json ~last:dump_last ~label:cmd ());
  path

let finish_with_dump dump_dir ~cmd ~clean =
  let dump = Option.map (fun dir -> write_crash_dump dir ~cmd) dump_dir in
  if not clean then begin
    Option.iter (fun p -> Printf.eprintf "crash dump: %s\n%!" p) dump;
    exit 1
  end

let run_faultsim seed rate sites domains streams ops org locking dump_dir json
    =
  let module F = Pt_service.Faultsim in
  let cfg =
    {
      F.default_config with
      seed;
      rate_ppm = rate;
      sites;
      domains;
      streams;
      ops;
      org;
      locking;
    }
  in
  let outcome = F.run cfg in
  if json then print_endline (F.outcome_to_json outcome)
  else Format.printf "@[<v>%a@]@." F.pp_outcome outcome;
  finish_with_dump dump_dir ~cmd:"faultsim" ~clean:outcome.F.fsck_clean

(* --- numa: per-node replicas, locality-aware walks, migration policy --- *)

let run_numa quick nodes modes orgs locking domains streams rounds reads
    writes vpns seed remote_cost rate sites spaces dump_dir json =
  let module NS = Numa.Numa_sim in
  let base = if quick then NS.quick_config else NS.default_config in
  let upd field v cfg = match v with None -> cfg | Some x -> field cfg x in
  let cfg =
    { base with NS.locking; domains; fault_rate_ppm = rate }
    |> upd (fun c x -> { c with NS.node_counts = x }) nodes
    |> upd (fun c x -> { c with NS.modes = x }) modes
    |> upd (fun c x -> { c with NS.orgs = x }) orgs
    |> upd (fun c x -> { c with NS.streams_per_node = x }) streams
    |> upd (fun c x -> { c with NS.rounds = x }) rounds
    |> upd (fun c x -> { c with NS.reads_per_stream = x }) reads
    |> upd (fun c x -> { c with NS.writes_per_stream = x }) writes
    |> upd (fun c x -> { c with NS.vpns_per_stream = x }) vpns
    |> upd (fun c x -> { c with NS.seed = x }) seed
    |> upd (fun c x -> { c with NS.remote_cost = x }) remote_cost
    |> upd (fun c x -> { c with NS.fault_sites = x }) sites
    |> upd (fun c x -> { c with NS.policy_spaces = x }) spaces
  in
  let outcome = NS.run cfg in
  if json then print_endline (NS.outcome_to_json cfg outcome)
  else Format.printf "@[<v>%a@]@." NS.pp_outcome outcome;
  finish_with_dump dump_dir ~cmd:"numa" ~clean:(NS.all_clean outcome)

(* --- fleet: tenants over shards, tagged TLBs, batched range ops --- *)

let run_fleet quick tenants shards streams rounds ops switch budget modes orgs
    locking domains seed dump_dir json =
  let module FS = Fleet.Fleet_sim in
  let base = if quick then FS.quick_config else FS.default_config in
  let upd field v cfg = match v with None -> cfg | Some x -> field cfg x in
  let cfg =
    { base with FS.locking; domains }
    |> upd (fun c x -> { c with FS.tenants = x }) tenants
    |> upd (fun c x -> { c with FS.shards = x }) shards
    |> upd (fun c x -> { c with FS.streams = x }) streams
    |> upd (fun c x -> { c with FS.rounds = x }) rounds
    |> upd (fun c x -> { c with FS.ops_per_tenant = x }) ops
    |> upd (fun c x -> { c with FS.switch_every = x }) switch
    |> upd (fun c x -> { c with FS.frame_budget = x }) budget
    |> upd (fun c x -> { c with FS.modes = x }) modes
    |> upd (fun c x -> { c with FS.orgs = x }) orgs
    |> upd (fun c x -> { c with FS.seed = x }) seed
  in
  let outcome = FS.run cfg in
  if json then print_endline (FS.outcome_to_json cfg outcome)
  else Format.printf "@[<v>%a@]@." FS.pp_outcome outcome;
  finish_with_dump dump_dir ~cmd:"fleet" ~clean:(FS.all_clean outcome)

(* --- chaos: WAL + checkpoint shards, crash/recovery soak --- *)

let run_chaos quick tenants shards rounds ops switch ckpt crash_at orgs
    locking domains sites rate seed dump_dir json =
  let module CS = Fleet.Chaos_sim in
  let base = if quick then CS.quick_config else CS.default_config in
  let upd field v cfg = match v with None -> cfg | Some x -> field cfg x in
  let cfg =
    { base with CS.locking; domains; checkpoint_every = ckpt }
    |> upd (fun c x -> { c with CS.tenants = x }) tenants
    |> upd (fun c x -> { c with CS.shards = x }) shards
    |> upd (fun c x -> { c with CS.rounds = x }) rounds
    |> upd (fun c x -> { c with CS.ops_per_tenant = x }) ops
    |> upd (fun c x -> { c with CS.switch_every = x }) switch
    |> upd (fun c x -> { c with CS.crash_offsets = x }) crash_at
    |> upd (fun c x -> { c with CS.orgs = x }) orgs
    |> upd (fun c x -> { c with CS.sites = x }) sites
    |> upd (fun c x -> { c with CS.rate_ppm = x }) rate
    |> upd (fun c x -> { c with CS.seed = x }) seed
  in
  let outcome = CS.run cfg in
  if json then print_endline (CS.outcome_to_json cfg outcome)
  else Format.printf "@[<v>%a@]@." CS.pp_outcome outcome;
  finish_with_dump dump_dir ~cmd:"chaos" ~clean:(CS.all_clean outcome)

(* --- report: the anomaly gate over two JSON artifacts --- *)

let run_report baseline current json =
  let load path =
    match Obs_report.load_file path with
    | Ok v -> v
    | Error e ->
        Printf.eprintf "ptsim report: %s\n%!" e;
        exit 2
  in
  let b = load baseline and c = load current in
  let r = Obs_report.compare_files ~baseline:b ~current:c in
  if json then
    print_endline
      (Obs_report.render_json ~baseline_path:baseline ~current_path:current r)
  else
    print_string
      (Obs_report.render_table ~baseline_path:baseline ~current_path:current r);
  if Obs_report.has_breach r then exit 1

(* --- unified telemetry: --metrics-out / --trace-out on every subcommand --- *)

let telemetry_term cmd_name =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's merged metrics registry (counters and log2 \
             histograms) to $(docv), in the format picked by \
             --metrics-format.")
  in
  let format =
    Arg.(
      value
      & opt
          (strict_enum ~flag:"metrics-format" ~cmd:cmd_name
             [ ("json", `Json); ("openmetrics", `Openmetrics) ])
          `Json
      & info [ "metrics-format" ] ~docv:"FORMAT"
          ~doc:
            "Metrics file format: json (structured dump with per-phase \
             series) or openmetrics (Prometheus text exposition, \
             scrape-ready).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record events and write Chrome trace-event JSON \
             (Perfetto-loadable) to $(docv).")
  in
  let capacity =
    Arg.(
      value & opt int 65_536
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:
            "Events kept per domain ring before the trace wraps (with \
             --trace-out).")
  in
  Term.(const (fun m f t c -> (m, f, t, c)) $ metrics $ format $ trace $ capacity)

let telemetry_start ((_, _, trace_out, capacity) as tele) =
  Obs.Ambient.reset ();
  Obs.Series.reset ();
  Obs.Recorder.disarm ();
  Obs.Tracer.reset ();
  if trace_out <> None then Obs.Tracer.enable ~capacity ();
  tele

let telemetry_finish name (metrics_out, metrics_format, trace_out, _) =
  (match metrics_out with
  | None -> ()
  | Some path ->
      let m = Obs.Ambient.merged () in
      (* a saturated tracer ring must be visible in the metrics file,
         not only in the trace summary line *)
      if Obs.Tracer.enabled () then Obs.Tracer.export_drop_counter m;
      (match metrics_format with
      | `Openmetrics -> write_file path (Obs.Metrics.to_openmetrics m)
      | `Json ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf "{\"schema_version\":2,\"command\":\"";
          Buffer.add_string buf name;
          Buffer.add_string buf "\",";
          Obs.Metrics.write_json_fields buf m;
          Buffer.add_char buf ',';
          Obs.Series.write_json_fields buf;
          Buffer.add_string buf "}\n";
          write_file path (Buffer.contents buf));
      Printf.printf "wrote %s\n%!" path);
  match trace_out with
  | None -> ()
  | Some path ->
      write_file path (Obs.Tracer.to_chrome_json ());
      Printf.printf "wrote %s (%d events, %d dropped)\n%!" path
        (Obs.Tracer.event_count ())
        (Obs.Tracer.dropped_count ());
      Obs.Tracer.disable ()

(* cmdliner evaluates the function side of [$] before the argument
   side, so [telemetry_start] runs before the experiment term's side
   effects and [telemetry_finish] after — giving every subcommand
   --metrics-out/--trace-out without touching its run function *)
let cmd name doc term =
  let finish tele () = telemetry_finish name tele in
  let tele = telemetry_term name in
  Cmd.v (Cmd.info name ~doc)
    Term.(const finish $ (const telemetry_start $ tele) $ term)

(* shared by the simulation drivers that arm the flight recorder *)
let dump_dir_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:
          "Write the flight recorder's last events (per logical stream, \
           byte-identical for any --domains) as a JSON crash dump to \
           $(docv), created if missing.  On an unclean exit the dump \
           path is also named on stderr.")

let () =
  let table1 =
    cmd "table1" "Workload characteristics (Table 1)"
      Term.(const run_table1 $ options_term $ domains_term)
  in
  let figure9 =
    cmd "figure9" "Page table sizes, single page size (Figure 9)"
      Term.(const run_figure9 $ options_term $ domains_term)
  in
  let figure10 =
    cmd "figure10" "Sizes with superpage/partial-subblock PTEs (Figure 10)"
      Term.(const run_figure10 $ options_term $ domains_term)
  in
  let figure11 =
    let design =
      Arg.(
        value
        & opt design_conv Sim.Access_exp.Single
        & info [ "tlb" ] ~docv:"DESIGN"
            ~doc:"TLB design: single|superpage|psb|csb (or a|b|c|d).")
    in
    cmd "figure11" "Cache lines per TLB miss (Figure 11a-d)"
      Term.(const run_figure11 $ options_term $ domains_term $ design)
  in
  let table2 =
    cmd "table2" "Analytic-formula cross-check (Appendix Table 2)"
      Term.(const run_table2 $ options_term $ domains_term)
  in
  let ablations =
    cmd "ablations" "Line-size, subblock-factor and bucket sweeps"
      Term.(const run_ablations $ options_term $ domains_term)
  in
  let churn =
    let ops =
      Arg.(
        value & opt int 8_000
        & info [ "ops" ] ~docv:"N" ~doc:"Lifecycle ops per churn stream.")
    in
    let seeds =
      Arg.(
        value & opt int 3
        & info [ "seeds" ] ~docv:"S"
            ~doc:"Independent streams per organization (averaged).")
    in
    let procs =
      Arg.(
        value & opt int 8
        & info [ "procs" ] ~docv:"P" ~doc:"Cap on simultaneous processes.")
    in
    let sample =
      Arg.(
        value & opt int 0
        & info [ "sample" ] ~docv:"K"
            ~doc:"Ops between footprint samples (0 picks ops/16).")
    in
    let json =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Also write the summary rows as JSON to $(docv).")
    in
    cmd "churn"
      "Dynamic churn: mmap/munmap/fork/exit/COW streams against every \
       page table"
      Term.(
        const run_churn $ options_term $ domains_term $ ops $ seeds $ procs
        $ sample $ json)
  in
  let throughput =
    let domains_list =
      Arg.(
        value
        & opt (list domains_conv) [ 1; 2; 4; 8 ]
        & info [ "domains" ] ~docv:"N[,N...]"
            ~doc:
              "Worker-domain counts to sweep (comma-separated), each \
               driving mixed traffic against one shared table.")
    in
    let streams =
      Arg.(
        value & opt int 0
        & info [ "streams" ] ~docv:"N"
            ~doc:
              "Logical work streams dealt round-robin over the domains (0 \
               = one per domain).  Fix it across a domain sweep to make \
               the merged telemetry domain-count invariant.")
    in
    let ops =
      Arg.(
        value & opt int 100_000
        & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker stream.")
    in
    let vpns =
      Arg.(
        value & opt int 4_096
        & info [ "vpns" ] ~docv:"N"
            ~doc:"Pages in each domain's (disjoint) working set.")
    in
    let seed =
      Arg.(
        value & opt int 42
        & info [ "seed" ] ~docv:"SEED" ~doc:"Per-domain traffic PRNG seed.")
    in
    let org_conv =
      strict_enum ~flag:"org" ~cmd:"throughput"
        [
          ("all", `All);
          ("clustered", `One Pt_service.Service.Clustered);
          ("hashed", `One Pt_service.Service.Hashed);
        ]
    in
    let org =
      Arg.(
        value & opt org_conv `All
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization: all|clustered|hashed.")
    in
    let locking_conv =
      strict_enum ~flag:"locking" ~cmd:"throughput"
        [
          ( "all",
            [
              Pt_service.Service.Striped;
              Pt_service.Service.Global;
              Pt_service.Service.Seqlock;
            ] );
          ("striped", [ Pt_service.Service.Striped ]);
          ("global", [ Pt_service.Service.Global ]);
          ("seqlock", [ Pt_service.Service.Seqlock ]);
        ]
    in
    let locking =
      Arg.(
        value
        & opt locking_conv
            [
              Pt_service.Service.Striped;
              Pt_service.Service.Global;
              Pt_service.Service.Seqlock;
            ]
        & info [ "locking" ] ~docv:"LOCKING"
            ~doc:
              "Lock strategy: all|striped (per-bucket readers-writer) \
               |global (one mutex)|seqlock (lock-free optimistic reads). \
               Anything else exits 2.")
    in
    let json =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Also write the rows as JSON to $(docv).")
    in
    cmd "throughput"
      "Concurrent service: mixed ops/sec from N domains sharing one page \
       table"
      Term.(
        const run_throughput $ domains_list $ streams $ ops $ vpns $ seed
        $ org $ locking $ json)
  in
  let inspect =
    let org_conv =
      strict_enum ~flag:"org" ~cmd:"inspect"
        [ ("clustered", `Clustered); ("hashed", `Hashed) ]
    in
    let org =
      Arg.(
        value & opt org_conv `Clustered
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization to probe: clustered|hashed.")
    in
    cmd "inspect"
      "Probe built tables: chain-length, occupancy and node-utilization \
       histograms vs the analytic load factor"
      Term.(const run_inspect $ options_term $ domains_term $ org)
  in
  let all =
    cmd "all" "Every table and figure, in paper order"
      Term.(const run_all $ options_term $ domains_term)
  in
  let verify =
    cmd "verify" "Check the paper's headline claims hold on this build"
      Term.(const run_verify $ options_term $ domains_term)
  in
  let dump =
    let workload_name =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"NAME" ~doc:"Workload name.")
    in
    let dir =
      Arg.(
        value & opt string "."
        & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
    in
    cmd "dump" "Write a workload's snapshot and trace to text files"
      Term.(const run_dump $ options_term $ workload_name $ dir)
  in
  let replay =
    let snap_file =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot file from 'ptsim dump'.")
    in
    let trace_file =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"TRACE" ~doc:"Trace file from 'ptsim dump'.")
    in
    cmd "replay"
      "Replay a dumped snapshot+trace against every page table"
      Term.(const run_replay $ options_term $ snap_file $ trace_file)
  in
  let workload =
    let workload_name =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"NAME" ~doc:"Workload name (coral, nasa7, ...).")
    in
    cmd "workload" "Inspect a workload model: snapshot and trace statistics"
      Term.(const run_workload $ options_term $ workload_name)
  in
  let service_org_conv cmd =
    strict_enum ~flag:"org" ~cmd
      [
        ("clustered", Pt_service.Service.Clustered);
        ("hashed", Pt_service.Service.Hashed);
      ]
  in
  let service_locking_conv cmd =
    strict_enum ~flag:"locking" ~cmd
      [
        ("striped", Pt_service.Service.Striped);
        ("global", Pt_service.Service.Global);
        ("seqlock", Pt_service.Service.Seqlock);
      ]
  in
  let fsck =
    let seed =
      Arg.(
        value & opt int 7
        & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the demo population.")
    in
    let org =
      Arg.(
        value
        & opt (service_org_conv "fsck") Pt_service.Service.Clustered
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization to check: clustered|hashed.")
    in
    let corruptions =
      Arg.(
        value & opt_all string []
        & info [ "corrupt" ] ~docv:"KIND"
            ~doc:
              "Deliberately corrupt the table before checking \
               (repeatable).  Kinds: cycle, cross_link, misplace, \
               duplicate, torn, count, ... (per organization).")
    in
    let repair =
      Arg.(
        value & flag
        & info [ "repair" ]
            ~doc:
              "Rebuild the table from surviving mappings when the check \
               finds violations, then re-check.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Print the report as one JSON object.")
    in
    cmd "fsck"
      "Build a table, optionally corrupt it, and run the integrity \
       checker (exit 1 on findings)"
      Term.(const run_fsck $ seed $ org $ corruptions $ repair $ json)
  in
  let faultsim =
    let seed =
      Arg.(
        value & opt int 1
        & info [ "seed" ] ~docv:"SEED"
            ~doc:"Fault-plan and workload seed.")
    in
    let rate =
      Arg.(
        value & opt int 20_000
        & info [ "rate" ] ~docv:"PPM"
            ~doc:"Per-site fault arming rate, parts per million.")
    in
    let sites =
      Arg.(
        value
        & opt (strict_sites ~cmd:"faultsim") Fault.all_sites
        & info [ "sites" ] ~docv:"SITE[,SITE...]"
            ~doc:
              "Fault sites to arm: alloc_node, alloc_phys, lock_timeout, \
               domain_crash, torn_write, seqlock_stall, replica_write \
               (default: all).")
    in
    let domains =
      Arg.(
        value & opt domains_conv 1
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "Worker domains.  The outcome (and --json byte stream) is \
               identical for every value.")
    in
    let streams =
      Arg.(
        value & opt int 4
        & info [ "streams" ] ~docv:"N" ~doc:"Logical operation streams.")
    in
    let ops =
      Arg.(
        value & opt int 2_000
        & info [ "ops" ] ~docv:"N" ~doc:"Operations per stream.")
    in
    let org =
      Arg.(
        value
        & opt (service_org_conv "faultsim") Pt_service.Service.Clustered
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization: clustered|hashed.")
    in
    let locking =
      Arg.(
        value
        & opt (service_locking_conv "faultsim") Pt_service.Service.Striped
        & info [ "locking" ] ~docv:"LOCKING"
            ~doc:"Lock strategy: striped|global|seqlock.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "Print the outcome as one JSON object (byte-identical for \
               any --domains).")
    in
    cmd "faultsim"
      "Fault soak: inject allocation failures, lock timeouts, torn PTEs \
       and domain crashes under churn; exit 1 unless the table ends \
       fsck-clean"
      Term.(
        const run_faultsim $ seed $ rate $ sites $ domains $ streams $ ops
        $ org $ locking $ dump_dir_term $ json)
  in
  let numa =
    let quick =
      Arg.(
        value & flag
        & info [ "quick" ]
            ~doc:"CI-sized defaults (fewer streams, rounds and ops).")
    in
    let nodes =
      Arg.(
        value
        & opt (some (list int)) None
        & info [ "nodes" ] ~docv:"N[,N...]"
            ~doc:"NUMA node counts to sweep (default 2,4; 1,2 --quick).")
    in
    let modes_conv =
      strict_enum ~flag:"mode" ~cmd:"numa"
        [
          ( "all",
            [
              Numa.Replicated.Single_home;
              Numa.Replicated.Eager;
              Numa.Replicated.Lazy;
            ] );
          ("single_home", [ Numa.Replicated.Single_home ]);
          ("eager", [ Numa.Replicated.Eager ]);
          ("lazy", [ Numa.Replicated.Lazy ]);
        ]
    in
    let modes =
      Arg.(
        value
        & opt (some modes_conv) None
        & info [ "mode" ] ~docv:"MODE"
            ~doc:
              "Replication mode: all|single_home (one replica, remote \
               walks)|eager (write fan-out)|lazy (pull-on-read catch-up).")
    in
    let orgs_conv =
      strict_enum ~flag:"org" ~cmd:"numa"
        [
          ( "all",
            [ Pt_service.Service.Clustered; Pt_service.Service.Hashed ] );
          ("clustered", [ Pt_service.Service.Clustered ]);
          ("hashed", [ Pt_service.Service.Hashed ]);
        ]
    in
    let orgs =
      Arg.(
        value
        & opt (some orgs_conv) None
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization: all|clustered|hashed.")
    in
    let locking =
      Arg.(
        value
        & opt (service_locking_conv "numa") Pt_service.Service.Seqlock
        & info [ "locking" ] ~docv:"LOCKING"
            ~doc:
              "Lock strategy for every replica: striped|global|seqlock \
               (default seqlock — lock-free local walks).")
    in
    let domains =
      Arg.(
        value & opt domains_conv 1
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "Worker domains.  The outcome (and --json byte stream) is \
               identical for every value.")
    in
    let streams =
      Arg.(
        value
        & opt (some int) None
        & info [ "streams" ] ~docv:"N" ~doc:"Logical streams per node.")
    in
    let rounds =
      Arg.(
        value
        & opt (some int) None
        & info [ "rounds" ] ~docv:"N" ~doc:"Write/read phase rounds.")
    in
    let reads =
      Arg.(
        value
        & opt (some int) None
        & info [ "reads" ] ~docv:"N" ~doc:"Lookups per stream per round.")
    in
    let writes =
      Arg.(
        value
        & opt (some int) None
        & info [ "writes" ] ~docv:"N" ~doc:"Mutations per stream per round.")
    in
    let vpns =
      Arg.(
        value
        & opt (some int) None
        & info [ "vpns" ] ~docv:"N"
            ~doc:"Pages in each stream's (bucket-disjoint) working set.")
    in
    let seed =
      Arg.(
        value
        & opt (some int) None
        & info [ "seed" ] ~docv:"SEED" ~doc:"Traffic PRNG seed.")
    in
    let remote_cost =
      Arg.(
        value
        & opt (some int) None
        & info [ "remote-cost" ] ~docv:"C"
            ~doc:"Modeled cost of a remote line (local is 1; default 4).")
    in
    let rate =
      Arg.(
        value & opt int 0
        & info [ "rate" ] ~docv:"PPM"
            ~doc:
              "Replica-write fault arming rate, parts per million (0 = no \
               plan).")
    in
    let sites =
      Arg.(
        value
        & opt (some (strict_sites ~cmd:"numa")) None
        & info [ "sites" ] ~docv:"SITE[,SITE...]"
            ~doc:"Fault sites to arm with --rate (default replica_write).")
    in
    let spaces =
      Arg.(
        value
        & opt (some int) None
        & info [ "spaces" ] ~docv:"N"
            ~doc:"Address spaces in the migration-policy experiment.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "Print the outcome as one JSON object (byte-identical for \
               any --domains).")
    in
    cmd "numa"
      "NUMA-replicated service: per-node replicas, locality-aware walks \
       (remote vs local lines per miss), eager/lazy write fan-out and the \
       per-space migration policy; exit 1 unless every replica set ends \
       fsck-clean"
      Term.(
        const run_numa $ quick $ nodes $ modes $ orgs $ locking $ domains
        $ streams $ rounds $ reads $ writes $ vpns $ seed $ remote_cost
        $ rate $ sites $ spaces $ dump_dir_term $ json)
  in
  let fleet =
    let quick =
      Arg.(
        value & flag
        & info [ "quick" ]
            ~doc:"CI-sized defaults (fewer tenants, rounds and events).")
    in
    let tenants =
      Arg.(
        value
        & opt (some int) None
        & info [ "tenants" ] ~docv:"N"
            ~doc:"Tenant address spaces (default 12; 8 --quick).")
    in
    let shards =
      Arg.(
        value
        & opt (some int) None
        & info [ "shards" ] ~docv:"N"
            ~doc:"Service shards the tenants are dealt over (default 4).")
    in
    let streams =
      Arg.(
        value
        & opt (some int) None
        & info [ "streams" ] ~docv:"N"
            ~doc:"Logical streams multiplexing the tenants (default 4).")
    in
    let rounds =
      Arg.(
        value
        & opt (some int) None
        & info [ "rounds" ] ~docv:"N"
            ~doc:"Rounds between frame-budget enforcements.")
    in
    let ops =
      Arg.(
        value
        & opt (some int) None
        & info [ "ops" ] ~docv:"N" ~doc:"Churn events per tenant.")
    in
    let switch =
      Arg.(
        value
        & opt (some int) None
        & info [ "switch-every" ] ~docv:"N"
            ~doc:"Context-switch quantum, in events (default 48).")
    in
    let budget =
      Arg.(
        value
        & opt (some int) None
        & info [ "budget" ] ~docv:"PAGES"
            ~doc:
              "Fleet-wide frame budget; exceeding it at a round barrier \
               evicts coldest tenants (0 = unlimited).")
    in
    let modes_conv =
      strict_enum ~flag:"mode" ~cmd:"fleet"
        [
          ("all", [ Fleet.Sharded.Batched; Fleet.Sharded.Paged ]);
          ("batched", [ Fleet.Sharded.Batched ]);
          ("paged", [ Fleet.Sharded.Paged ]);
        ]
    in
    let modes =
      Arg.(
        value
        & opt (some modes_conv) None
        & info [ "mode" ] ~docv:"MODE"
            ~doc:
              "Range-op mode: all|batched (one submission per region, \
               amortised stripe locks)|paged (one lock per page).")
    in
    let orgs_conv =
      strict_enum ~flag:"org" ~cmd:"fleet"
        [
          ( "all",
            [ Pt_service.Service.Clustered; Pt_service.Service.Hashed ] );
          ("clustered", [ Pt_service.Service.Clustered ]);
          ("hashed", [ Pt_service.Service.Hashed ]);
        ]
    in
    let orgs =
      Arg.(
        value
        & opt (some orgs_conv) None
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization: all|clustered|hashed.")
    in
    let locking =
      Arg.(
        value
        & opt (service_locking_conv "fleet") Pt_service.Service.Seqlock
        & info [ "locking" ] ~docv:"LOCKING"
            ~doc:
              "Lock strategy for every shard: striped|global|seqlock \
               (default seqlock — evictions drain through epoch limbo).")
    in
    let domains =
      Arg.(
        value & opt domains_conv 1
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "Worker domains.  The outcome (and --json byte stream) is \
               identical for every value.")
    in
    let seed =
      Arg.(
        value
        & opt (some int) None
        & info [ "seed" ] ~docv:"SEED" ~doc:"Churn PRNG seed.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "Print the outcome as one JSON object (byte-identical for \
               any --domains; timing appears only in the human table).")
    in
    cmd "fleet"
      "Multi-tenant fleet: churn tenants dealt over sharded services with \
       ASID-tagged TLBs, batched range ops and frame-budget eviction; exit \
       1 unless every shard ends fsck-clean with cross-shard ASIDs \
       disjoint"
      Term.(
        const run_fleet $ quick $ tenants $ shards $ streams $ rounds $ ops
        $ switch $ budget $ modes $ orgs $ locking $ domains $ seed
        $ dump_dir_term $ json)
  in
  let chaos =
    let quick =
      Arg.(
        value & flag
        & info [ "quick" ]
            ~doc:"CI-sized defaults (fewer tenants, rounds and events).")
    in
    let tenants =
      Arg.(
        value
        & opt (some int) None
        & info [ "tenants" ] ~docv:"N"
            ~doc:"Tenant address spaces (default 8; 6 --quick).")
    in
    let shards =
      Arg.(
        value
        & opt (some int) None
        & info [ "shards" ] ~docv:"N"
            ~doc:
              "Durable shards, one write-ahead log each (default 4).  Also \
               the logical stream count: tenant asid runs on stream asid \
               mod shards, which is what keeps WAL offsets independent of \
               --domains.")
    in
    let rounds =
      Arg.(
        value
        & opt (some int) None
        & info [ "rounds" ] ~docv:"N"
            ~doc:
              "Rounds between supervision barriers (recovery, checkpoints).")
    in
    let ops =
      Arg.(
        value
        & opt (some int) None
        & info [ "ops" ] ~docv:"N" ~doc:"Churn events per tenant.")
    in
    let switch =
      Arg.(
        value
        & opt (some int) None
        & info [ "switch-every" ] ~docv:"N"
            ~doc:"Context-switch quantum, in events (default 48).")
    in
    (* the same exit-2 contract as the enum flags: garbage is named on
       stderr, never silently clamped *)
    let cadence_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | _ ->
            Printf.eprintf
              "invalid checkpoint cadence %S for chaos (want an integer >= \
               1)\n\
               %!"
              s;
            exit 2
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    let ckpt =
      Arg.(
        value
        & opt cadence_conv 1
        & info [ "checkpoint-every" ] ~docv:"ROUNDS"
            ~doc:
              "Checkpoint cadence: snapshot every shard's live mapping set \
               (and compact its WAL) every $(docv) rounds.")
    in
    let offsets_conv =
      let parse s =
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | tok :: rest -> (
              let tok = String.trim tok in
              match int_of_string_opt tok with
              | Some n when n >= 0 -> go (n :: acc) rest
              | _ ->
                  Printf.eprintf
                    "invalid crash offset %S for chaos (want comma-separated \
                     byte offsets >= 0)\n\
                     %!"
                    tok;
                  exit 2)
        in
        go [] (String.split_on_char ',' s)
      in
      let print ppf l =
        Format.pp_print_string ppf
          (String.concat "," (List.map string_of_int l))
      in
      Arg.conv (parse, print)
    in
    let crash_at =
      Arg.(
        value
        & opt (some offsets_conv) None
        & info [ "crash-at" ] ~docv:"OFFSETS"
            ~doc:
              "Planned crash points: comma-separated absolute WAL byte \
               offsets, dealt round-robin over shards; an append reaching \
               one flushes a torn partial record and kills the shard.  \
               Default: a seed-derived schedule, one mid-record offset per \
               shard.")
    in
    let orgs_conv =
      strict_enum ~flag:"org" ~cmd:"chaos"
        [
          ( "all",
            [ Pt_service.Service.Clustered; Pt_service.Service.Hashed ] );
          ("clustered", [ Pt_service.Service.Clustered ]);
          ("hashed", [ Pt_service.Service.Hashed ]);
        ]
    in
    let orgs =
      Arg.(
        value
        & opt (some orgs_conv) None
        & info [ "org" ] ~docv:"ORG"
            ~doc:"Table organization: all|clustered|hashed.")
    in
    let locking =
      Arg.(
        value
        & opt (service_locking_conv "chaos") Pt_service.Service.Striped
        & info [ "locking" ] ~docv:"LOCKING"
            ~doc:"Lock strategy for every shard: striped|global|seqlock.")
    in
    let domains =
      Arg.(
        value & opt domains_conv 1
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "Worker domains.  The outcome (and --json byte stream) is \
               identical for every value.")
    in
    let sites =
      Arg.(
        value
        & opt (some (strict_sites ~cmd:"chaos")) None
        & info [ "sites" ] ~docv:"SITES"
            ~doc:
              "Random fault plan, comma-separated (default shard_crash — \
               the only site the equivalence oracle models; others \
               exercise the service's self-healing instead).")
    in
    let rate =
      Arg.(
        value
        & opt (some int) None
        & info [ "rate" ] ~docv:"PPM"
            ~doc:"Random fault rate, parts per million (default 2000).")
    in
    let seed =
      Arg.(
        value
        & opt (some int) None
        & info [ "seed" ] ~docv:"SEED"
            ~doc:"Soak seed: churn, fault plan and crash schedule.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "Print the outcome as one JSON object (byte-identical for \
               any --domains; timing appears only in the human table).")
    in
    cmd "chaos"
      "Crash/recovery soak: churn tenants over crash-consistent shards \
       (per-shard write-ahead log + checkpoints) while shards are killed \
       at planned WAL offsets, at random, mid-checkpoint and mid-recovery; \
       every recovery must rebuild exactly the acknowledged state; exit 1 \
       unless all recoveries converge, the fleet ends fsck-clean and every \
       shard equals the never-crashed oracle"
      Term.(
        const run_chaos $ quick $ tenants $ shards $ rounds $ ops $ switch
        $ ckpt $ crash_at $ orgs $ locking $ domains $ sites $ rate $ seed
        $ dump_dir_term $ json)
  in
  let report =
    let baseline =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"BASELINE"
            ~doc:
              "Baseline JSON artifact: a --metrics-out dump, a --json \
               outcome, or a benchmark file.")
    in
    let current =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"CURRENT" ~doc:"Current JSON artifact to gate.")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Print the findings as one JSON object instead of a table.")
    in
    cmd "report"
      "Anomaly gate: flatten two JSON artifacts (metrics dumps, --json \
       outcomes or benchmark files), diff the shared keys, and flag p99 \
       regressions, lock-contention spikes, eviction storms and tracer \
       drops against declarative thresholds; exit 1 on any breach, 2 on \
       unreadable input"
      Term.(const run_report $ baseline $ current $ json)
  in
  let info =
    Cmd.info "ptsim" ~version:"1.0"
      ~doc:
        "Reproduction of 'A New Page Table for 64-bit Address Spaces' \
         (SOSP '95): clustered page tables vs linear, forward-mapped and \
         hashed, under conventional, superpage, partial-subblock and \
         complete-subblock TLBs."
  in
  (* a bare "ptsim" is an error, not a successful usage dump: without a
     default term, Cmd.group prints help and exits 0, which lets typo'd
     scripts (and CI steps) sail through green *)
  let default =
    Term.(ret (const (fun () -> `Error (true, "missing subcommand")) $ const ()))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            table1; figure9; figure10; figure11; table2; ablations; churn;
            throughput; inspect; fsck; faultsim; numa; fleet; chaos; report;
            workload; dump; replay; verify; all;
          ]))
