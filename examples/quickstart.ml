(* Quickstart: create a clustered page table, map some memory, service
   a TLB miss, and watch the node structure do its thing.

   Run with: dune exec examples/quickstart.exe *)

let attr = Pte.Attr.default

let () =
  (* A clustered page table with the paper's parameters: subblock
     factor 16 (64 KB page blocks), 4096 hash buckets. *)
  let table = Clustered_pt.Table.create Clustered_pt.Config.default in

  (* Map a 40-page buffer starting at virtual address 0x4100_0000. *)
  let first_vpn = Addr.Vaddr.vpn 0x4100_0000L in
  for i = 0 to 39 do
    Clustered_pt.Table.insert_base table
      ~vpn:(Int64.add first_vpn (Int64.of_int i))
      ~ppn:(Int64.of_int (0x200 + i))
      ~attr
  done;

  (* Forty pages span three 16-page blocks: three nodes, not forty. *)
  Printf.printf "mapped %d pages in %d nodes (%d bytes of page table)\n"
    (Clustered_pt.Table.population table)
    (Clustered_pt.Table.node_count table)
    (Clustered_pt.Table.size_bytes table);
  Printf.printf "a hashed page table would need %d bytes (24 per page)\n\n"
    (24 * 40);

  (* Service a TLB miss: translate a faulting address. *)
  let faulting = 0x4100_5678L in
  (match Clustered_pt.Table.lookup table ~vpn:(Addr.Vaddr.vpn faulting) with
  | Some tr, walk ->
      Format.printf "lookup %a -> %a@." Addr.Vaddr.pp faulting
        Pt_common.Types.pp_translation tr;
      Printf.printf "the walk read %d node(s) and touched %d cache line(s)\n\n"
        walk.Pt_common.Types.probes
        (Pt_common.Types.walk_lines walk)
  | None, _ -> print_endline "page fault!");

  (* The OS notices the first block is fully populated and properly
     placed, and promotes it to a 64 KB superpage PTE (Section 5). *)
  let summary = Clustered_pt.Table.block_summary table ~vpn:first_vpn in
  Printf.printf "block summary: base pages 0x%04x, promotable: %s\n"
    summary.Clustered_pt.Table.base_vmask
    (match summary.Clustered_pt.Table.promotable_ppn with
    | Some ppn -> Printf.sprintf "yes (block frame 0x%Lx)" ppn
    | None -> "no");
  ignore (Clustered_pt.Table.promote_block table ~vpn:first_vpn);
  Printf.printf "after promotion: %d bytes of page table\n"
    (Clustered_pt.Table.size_bytes table);

  (* The promoted mapping translates the same addresses. *)
  match Clustered_pt.Table.lookup table ~vpn:first_vpn with
  | Some tr, _ ->
      Format.printf "lookup after promotion -> %a@."
        Pt_common.Types.pp_translation tr
  | None, _ -> print_endline "page fault!"
