(* Demand paging under the three page-size policies of Section 6.1:
   base pages only, partial-subblock PTEs, and dynamic superpage
   promotion — with page reservation making the latter two possible.

   Run with: dune exec examples/superpage_promotion.exe *)

module A = Os_policy.Address_space
module Intf = Pt_common.Intf

let attr = Pte.Attr.default

let clustered () =
  Intf.Instance
    ((module Clustered_pt.Table), Clustered_pt.Table.create Clustered_pt.Config.default)

let run policy name =
  let pt = clustered () in
  let aspace = A.create ~pt ~total_pages:8192 ~policy () in
  (* an mmap'd file: 24 blocks (1.5 MB), faulted in page by page the
     way a streaming read would touch it *)
  let region = Addr.Region.make ~first_vpn:0x9000L ~pages:384 in
  A.declare_region aspace region attr;
  Addr.Region.iter_vpns region (fun vpn ->
      match A.fault aspace ~vpn with
      | `Mapped _ -> ()
      | `Already_mapped _ | `Segfault | `Oom -> assert false);
  let stats = A.allocator_stats aspace in
  Printf.printf
    "%-22s page table: %6d bytes   promotions: %2d   reservations: %d\n" name
    (Intf.size_bytes pt) (A.promotions aspace)
    stats.Mem.Phys_alloc.reservations_made;
  pt

let () =
  Printf.printf "Faulting in 384 pages (1.5 MB) under each policy:\n\n";
  let base = run A.Base_only "base pages only" in
  let psb = run A.Partial_subblock "partial-subblock" in
  let sp = run A.Superpage_promotion "superpage promotion" in
  Printf.printf
    "\nbase:%d  psb:%d  superpage:%d bytes — the compact formats cut the\n\
     table by %.0f%% (Figure 10's effect, live)\n"
    (Intf.size_bytes base) (Intf.size_bytes psb) (Intf.size_bytes sp)
    (100.0
    *. (1.0 -. float_of_int (Intf.size_bytes sp) /. float_of_int (Intf.size_bytes base)));
  (* and the TLB sees superpage translations now *)
  match Intf.lookup sp ~vpn:0x9010L with
  | Some tr, _ ->
      Format.printf "a miss to 0x9010 now loads: %a@."
        Pt_common.Types.pp_translation tr
  | None, _ -> assert false
