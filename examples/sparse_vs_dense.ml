(* The Figure 9 intuition on two hand-made address spaces: a dense one
   (one big mapped run) and a sparse 64-bit one (small objects
   scattered across the full address space).  Linear page tables love
   the first and die on the second; hashed tables cost the same for
   both; clustered tables win both.

   Run with: dune exec examples/sparse_vs_dense.exe *)

module Intf = Pt_common.Intf

let attr = Pte.Attr.default

let kinds =
  [
    ("linear (6-level)", Sim.Factory.Linear6);
    ("linear (leaves)", Sim.Factory.Linear1);
    ("forward-mapped", Sim.Factory.Forward_mapped);
    ("hashed", Sim.Factory.Hashed);
    ("clustered", Sim.Factory.clustered16);
  ]

let measure populate =
  List.map
    (fun (name, kind) ->
      let pt = Sim.Factory.make kind in
      populate pt;
      (name, Intf.size_bytes pt, Intf.population pt))
    kinds

let print title rows =
  Printf.printf "\n%s\n" title;
  let _, hashed_bytes, _ = List.nth rows 3 in
  List.iter
    (fun (name, bytes, pages) ->
      Printf.printf "  %-18s %8d bytes for %4d pages  (%.2fx hashed)\n" name
        bytes pages
        (float_of_int bytes /. float_of_int hashed_bytes))
    rows

let () =
  (* dense: a 2000-page heap, contiguous *)
  let dense pt =
    for i = 0 to 1999 do
      Intf.insert_base pt
        ~vpn:(Int64.add 0x80000L (Int64.of_int i))
        ~ppn:(Int64.of_int i) ~attr
    done
  in
  print "Dense address space: one 8 MB heap" (measure dense);

  (* sparse: 125 sixteen-page objects scattered through 64 bits *)
  let sparse pt =
    let rng = Workload.Prng.create ~seed:2025L in
    for _ = 1 to 125 do
      (* anywhere in a 52-bit VPN space, object-aligned *)
      let base =
        Int64.shift_left
          (Int64.of_int (Workload.Prng.int rng ~bound:(1 lsl 30)))
        4
      in
      for i = 0 to 15 do
        Intf.insert_base pt
          ~vpn:(Int64.add base (Int64.of_int i))
          ~ppn:(Int64.of_int i) ~attr
      done
    done
  in
  print "Sparse 64-bit address space: 125 objects of 64 KB, scattered"
    (measure sparse);

  print_endline
    "\nThe clustered table stays cheap in both worlds: it amortizes one\n\
     tag+next over each block's mappings (dense) and never pays a 4 KB\n\
     page for an isolated object (sparse)."
