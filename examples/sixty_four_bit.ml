(* The paper's title question, end to end: what happens to each page
   table when the address space actually goes 64-bit?

   Section 6.2 predicts "future 64-bit workloads and object-oriented
   programs to have larger and sparser address spaces ... make both
   hashed and clustered page tables more attractive".  This example
   runs the synthetic future workload (60k pages scattered through
   16 TB) against every organization.

   Run with: dune exec examples/sixty_four_bit.exe *)

module Intf = Pt_common.Intf

let () =
  let spec = Workload.Table1.future64 in
  let seed = 0x64_64L in
  let snap = Workload.Snapshot.generate spec ~seed in
  Printf.printf
    "a 64-bit object store: %d pages in %d objects, scattered over 16 TB\n\n"
    (Workload.Snapshot.total_pages snap)
    (List.fold_left
       (fun acc p -> acc + List.length p.Workload.Snapshot.segments)
       0 snap.Workload.Snapshot.procs);

  let assignments =
    List.mapi
      (fun i proc ->
        Sim.Builder.assign proc ~seed:(Int64.add seed (Int64.of_int i)) ())
      snap.Workload.Snapshot.procs
  in
  let size kind = Sim.Size_exp.size_of kind ~policy:`Base ~assignments in
  let hashed = size Sim.Factory.Hashed in
  Printf.printf "page-table memory (hashed = %.0f KB = 1.00):\n"
    (float_of_int hashed /. 1024.0);
  List.iter
    (fun kind ->
      let bytes = size kind in
      Printf.printf "  %-14s %8.0f KB  (%.2fx)\n" (Sim.Factory.name kind)
        (float_of_int bytes /. 1024.0)
        (float_of_int bytes /. float_of_int hashed))
    [
      Sim.Factory.Linear6;
      Sim.Factory.Forward_mapped;
      Sim.Factory.Forward_guarded;
      Sim.Factory.Hashed;
      Sim.Factory.clustered16;
      Sim.Factory.Clustered_variable;
    ];

  (* and the access side: the trees pay per level, the hashes pay per
     chain node, the clustered table pays one node *)
  Printf.printf "\ncache lines per TLB miss (single-page-size TLB):\n";
  let run =
    Sim.Access_exp.run ~seed ~length:40_000 ~design:Sim.Access_exp.Single
      ~pt_kinds:
        [
          Sim.Factory.Linear1;
          Sim.Factory.Forward_mapped;
          Sim.Factory.Forward_guarded;
          Sim.Factory.Hashed;
          Sim.Factory.clustered16;
        ]
      spec
  in
  List.iter
    (fun r ->
      Printf.printf "  %-14s %.2f\n" r.Sim.Access_exp.pt
        r.Sim.Access_exp.mean_lines)
    run.Sim.Access_exp.results;

  print_endline
    "\nLinear and forward-mapped tables pay for 64 bits in both memory\n\
     (a page or node per scattered object) and, for the trees, in walk\n\
     depth; guards only soften the latter.  At 4096 buckets both hash\n\
     tables are overloaded, but clustering divides the load factor by\n\
     the pages-per-block (8.2 vs 1.9 lines here) and Section 7's fix —\n\
     more buckets — costs the clustered table 16x less to apply:";

  (* apply the Section 7 fix: grow the bucket array to the population *)
  let table =
    Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets:16384 ())
  in
  let instance =
    Pt_common.Intf.Instance ((module Clustered_pt.Table), table)
  in
  List.iter (fun a -> Sim.Builder.populate instance a ~policy:`Base) assignments;
  let counter = Mem.Cache_model.create_counter () in
  List.iter
    (fun a ->
      List.iter
        (fun (b : Sim.Builder.block_info) ->
          List.iter
            (fun (boff, _) ->
              let vpn =
                Int64.add
                  (Int64.shift_left b.Sim.Builder.vpbn 4)
                  (Int64.of_int boff)
              in
              let _, w = Clustered_pt.Table.lookup table ~vpn in
              ignore
                (Mem.Cache_model.record_walk counter
                   w.Pt_common.Types.accesses))
            b.Sim.Builder.boffs_ppns)
        a.Sim.Builder.blocks)
    assignments;
  Printf.printf "  clustered @ 16384 buckets: %.2f lines/lookup\n"
    (Mem.Cache_model.mean_lines counter)
