(* End-to-end trap-driven simulation, the way Section 6.1 measures:
   the coral workload's reference trace drives a TLB; every miss walks
   a page table through the software miss handler, and we read off the
   paper's metric — average cache lines touched per miss.

   Run with: dune exec examples/miss_handler_sim.exe *)

module MH = Os_policy.Miss_handler
module Intf = Pt_common.Intf

let () =
  let spec = Workload.Table1.coral in
  let seed = 0xC0FFEEL in
  let snap = Workload.Snapshot.generate spec ~seed in
  let trace = Workload.Trace.generate spec snap ~seed ~length:60_000 in
  Printf.printf
    "workload %s: %d pages mapped, trace of %d accesses over %d distinct pages\n\n"
    spec.Workload.Spec.name
    (Workload.Snapshot.total_pages snap)
    (Workload.Trace.accesses trace)
    (Workload.Trace.distinct_pages trace);

  let run name make_tlb kind ~policy ~prefetch =
    (* build the page table from the snapshot *)
    let pt = Sim.Factory.make kind in
    List.iteri
      (fun i proc ->
        let a =
          Sim.Builder.assign proc ~seed:(Int64.add seed (Int64.of_int i)) ()
        in
        Sim.Builder.populate pt a ~policy)
      snap.Workload.Snapshot.procs;
    let handler = MH.create ~tlb:(make_tlb ()) ~pt ~prefetch () in
    Array.iter
      (function
        | Workload.Trace.Access (_, vpn) -> ignore (MH.access handler ~vpn)
        | _ -> ())
      trace;
    Printf.printf "  %-34s misses: %6d   lines/miss: %.2f\n" name
      (MH.tlb_misses handler)
      (MH.mean_lines_per_miss handler)
  in

  Printf.printf "conventional 64-entry TLB:\n";
  run "hashed page table"
    (fun () -> Tlb.Intf.fa ~entries:64 ())
    Sim.Factory.Hashed ~policy:`Base ~prefetch:false;
  run "clustered page table"
    (fun () -> Tlb.Intf.fa ~entries:64 ())
    Sim.Factory.clustered16 ~policy:`Base ~prefetch:false;

  Printf.printf "\nsuperpage TLB (4KB + 64KB), superpage PTEs:\n";
  run "hashed, two tables"
    (fun () -> Tlb.Intf.superpage ~entries:64 ())
    (Sim.Factory.Hashed_two_tables { coarse_first = false })
    ~policy:`Superpage ~prefetch:false;
  run "clustered, native superpage nodes"
    (fun () -> Tlb.Intf.superpage ~entries:64 ())
    Sim.Factory.clustered16 ~policy:`Superpage ~prefetch:false;

  Printf.printf "\ncomplete-subblock TLB with prefetch (Section 4.4):\n";
  run "hashed (sixteen probes per fill)"
    (fun () -> Tlb.Intf.csb ~entries:64 ())
    Sim.Factory.Hashed ~policy:`Base ~prefetch:true;
  run "clustered (one node per fill)"
    (fun () -> Tlb.Intf.csb ~entries:64 ())
    Sim.Factory.clustered16 ~policy:`Base ~prefetch:true;

  print_endline
    "\nSuperpages cut the misses ~25x; the clustered table keeps every\n\
     remaining miss at about one cache line, which is the paper's point."
