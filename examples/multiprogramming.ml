(* Multiprogramming, the Section 7 discussion made runnable: several
   processes share one physical memory and one TLB.  Context switches
   either flush the TLB (the paper's SuperSPARC) or ride ASIDs; shared
   memory pressure preempts page-block reservations and erodes
   superpage coverage.

   Run with: dune exec examples/multiprogramming.exe *)

module Sys_ = Os_policy.System
module A = Os_policy.Address_space

let attr = Pte.Attr.default

let clustered () =
  Pt_common.Intf.Instance
    ( (module Clustered_pt.Table),
      Clustered_pt.Table.create Clustered_pt.Config.default )

let () =
  let spec = Workload.Table1.compress in
  let seed = 0x5151L in
  let snap = Workload.Snapshot.generate spec ~seed in
  (* pipeline partners switch on every pipe buffer: short quanta *)
  let trace = Workload.Trace.generate ~quantum:120 spec snap ~seed ~length:60_000 in

  let build switch_policy =
    let s =
      Sys_.create ~switch_policy ~make_pt:clustered ~total_pages:16384
        ~names:
          (List.map
             (fun p -> p.Workload.Snapshot.pname)
             snap.Workload.Snapshot.procs)
        ()
    in
    List.iteri
      (fun pid p ->
        List.iter
          (fun (seg : Workload.Snapshot.segment) ->
            Sys_.mmap s ~pid
              (Addr.Region.make ~first_vpn:seg.Workload.Snapshot.first_vpn
                 ~pages:seg.Workload.Snapshot.pages)
              attr)
          p.Workload.Snapshot.segments)
      snap.Workload.Snapshot.procs;
    Sys_.run_trace s trace;
    s
  in

  Printf.printf "compress | sh, %d accesses, switching every ~120 events:\n\n"
    (Workload.Trace.accesses trace);
  let flush = build Sys_.Flush in
  let asid = build Sys_.Asid in
  let report name s =
    Printf.printf
      "  %-16s switches: %5d   TLB misses: %6d   page faults: %5d   \
       lines/miss: %.2f\n"
      name (Sys_.switches s) (Sys_.tlb_misses s) (Sys_.page_faults s)
      (Sys_.mean_lines_per_miss s)
  in
  report "flush on switch" flush;
  report "ASID-tagged" asid;

  (* memory pressure: shrink physical memory until reservations fail *)
  Printf.printf
    "\nshared physical memory vs superpage coverage (Superpage_promotion \
     policy):\n";
  List.iter
    (fun total_pages ->
      let s =
        Sys_.create ~policy:A.Superpage_promotion ~make_pt:clustered
          ~total_pages ~names:[ "a"; "b" ] ()
      in
      Sys_.mmap s ~pid:0 (Addr.Region.make ~first_vpn:0x1000L ~pages:256) attr;
      Sys_.mmap s ~pid:1 (Addr.Region.make ~first_vpn:0x1000L ~pages:256) attr;
      (* demand faults in random order keep many blocks partially
         filled at once: under a tight frame budget, reservations run
         out and late blocks get unplaced frames *)
      let order = Array.init 256 (fun i -> i) in
      Workload.Prng.shuffle (Workload.Prng.create ~seed:9L) order;
      Array.iter
        (fun i ->
          Sys_.switch_to s ~pid:(i mod 2);
          ignore (Sys_.access s ~vpn:(Int64.add 0x1000L (Int64.of_int i)));
          Sys_.switch_to s ~pid:((i + 1) mod 2);
          ignore (Sys_.access s ~vpn:(Int64.add 0x1000L (Int64.of_int i))))
        order;
      let promos =
        A.promotions (Sys_.aspace s ~pid:0) + A.promotions (Sys_.aspace s ~pid:1)
      in
      let placed =
        A.properly_placed_pages (Sys_.aspace s ~pid:0)
        + A.properly_placed_pages (Sys_.aspace s ~pid:1)
      in
      Printf.printf
        "  %5d frames: %2d of 32 blocks promoted, %3d of %3d mapped pages \
         properly placed\n"
        total_pages promos placed (Sys_.total_mapped_pages s))
    [ 4096; 528; 496; 448 ];
  print_endline
    "\nSection 7: \"When physical memory demand is high, the operating\n\
     system may not be able to use superpages or partial-subblocking as\n\
     effectively as our simulations show.\""
